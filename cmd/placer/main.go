// Command placer runs the routability-driven hierarchical mixed-size
// placement flow on a Bookshelf design (or a generated synthetic one) and
// reports contest-style metrics.
//
// Usage:
//
//	placer -aux design.aux [flags]            # place a Bookshelf design
//	placer -synth sb-b [flags]                # place a built-in benchmark
//
// Flags select the placer variant (wirelength model, routability loop,
// multilevel, fences) so every baseline of the paper's evaluation is
// reachable from the command line. The placed design is written back as
// <name>.out.pl (and optionally a full Bookshelf bundle and SVG plots).
//
// Long runs can be made restartable: -checkpoint-dir writes a resumable
// snapshot every -checkpoint-every λ rounds (and every routability
// iteration), and -resume picks a killed run back up from such a
// snapshot:
//
//	placer -synth sb-b -checkpoint-dir ck/           # killed mid-run
//	placer -synth sb-b -resume ck/sb-b.snap          # continues to a legal result
//
// A resume is validated against the configuration recorded in the
// checkpoint: result-shaping flags (-model, -congestion-source,
// -route-last-rounds, the -no-* switches, …) must match the original run
// or the resume is rejected up front.
//
// After a small netlist edit, -eco-base skips the full flow entirely:
// it reuses a previous result (.pl or .snap) for every unchanged cell and
// re-places only windows around the changed ones:
//
//	placer -synth sb-b                               # full run → sb-b.out.pl
//	placer -aux edited.aux -eco-base sb-b.out.pl     # seconds, not minutes
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eco"
	"repro/internal/gen"
	"repro/internal/legal"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/snap"
	"repro/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		auxPath   = flag.String("aux", "", "Bookshelf .aux file to place")
		synth     = flag.String("synth", "", "built-in synthetic benchmark (sb-a..sb-e, congested) instead of -aux")
		seed      = flag.Int64("seed", 0, "override the synthetic benchmark seed")
		model     = flag.String("model", "wa", "wirelength model: wa or lse")
		density   = flag.Float64("density", 0, "target density (0 = auto)")
		noRoute   = flag.Bool("no-routability", false, "disable the congestion-driven inflation loop")
		noML      = flag.Bool("no-multilevel", false, "disable multilevel clustering")
		noFence   = flag.Bool("no-fences", false, "strip fence constraints (flat placement)")
		noDP      = flag.Bool("no-dp", false, "skip detailed placement")
		routeIter = flag.Int("routability-iters", 0, "routability loop iterations (0 = default)")
		congSrc   = flag.String("congestion-source", "", "routability congestion signal: route (every round) or estimate (fast RUDY+pin-density estimator for early rounds)")
		routeLast = flag.Int("route-last-rounds", 0, "with -congestion-source estimate: trailing rounds that still use the real router (0 = default 1)")
		outDir    = flag.String("out", ".", "output directory")
		writeAll  = flag.Bool("write-bookshelf", false, "write the full placed Bookshelf bundle")
		svg       = flag.Bool("svg", false, "write placement and congestion SVGs")
		rowFlip   = flag.Bool("row-flip", false, "flip alternate rows (FS) for power-rail sharing after placement")
		evaluate  = flag.Bool("evaluate", true, "globally route and report RC / scaled HPWL")
		ckDir     = flag.String("checkpoint-dir", "", "write resumable placement checkpoints (<design>.snap) into this directory")
		ckEvery   = flag.Int("checkpoint-every", 1, "lambda rounds between checkpoints (with -checkpoint-dir)")
		resume    = flag.String("resume", "", "resume from a checkpoint file instead of placing from scratch")
		ecoBase   = flag.String("eco-base", "", "incremental (ECO) placement: reuse this base placement (.pl or .snap) and repair only windows around the changed cells; large deltas fall back to a full place")
		workers   = flag.Int("workers", 0, "worker count for parallel kernels incl. DP and legalization (0 = auto, honors REPRO_WORKERS)")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); a partial -report is still written")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		report    = flag.String("report", "", "write a machine-readable JSON run report to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON (open in Perfetto/chrome://tracing) to this file")
		heatDir   = flag.String("heatmap-dir", "", "write per-iteration congestion heatmap SVGs into this directory")
		verbose   = flag.Bool("verbose", false, "debug logging to stderr (shorthand for -log-level debug)")
		logLevel  = flag.String("log-level", "", "stderr log level: debug, info, warn or error (empty = logging off)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "placer: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "placer: memprofile:", err)
			}
		}()
	}

	rec, err := buildRecorder(*report, *tracePath, *heatDir, *verbose, *logLevel)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM and -timeout cancel the run through the placement
	// flow's context; the -report post-mortem is still flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	d, err := loadDesign(*auxPath, *synth, *seed)
	if err != nil {
		return err
	}
	fmt.Println(d.ComputeStats())

	cfg := core.Config{
		Model:              *model,
		TargetDensity:      *density,
		Workers:            *workers,
		DisableRoutability: *noRoute,
		DisableMultilevel:  *noML,
		DisableFences:      *noFence,
		DisableDP:          *noDP,
		RoutabilityIters:   *routeIter,
		CongestionSource:   *congSrc,
		RouteLastRounds:    *routeLast,
		Obs:                rec,
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			return err
		}
		ckPath := filepath.Join(*ckDir, d.Name+".snap")
		cfg.CheckpointEvery = *ckEvery
		cfg.Checkpoint = func(st *snap.State) {
			if err := snap.WriteFile(ckPath, st); err != nil {
				fmt.Fprintln(os.Stderr, "placer: checkpoint:", err)
			}
		}
	}
	placer, err := core.New(cfg)
	if err != nil {
		return err
	}
	t0 := time.Now()
	var res core.Result
	switch {
	case *resume != "" && *ecoBase != "":
		return fmt.Errorf("use either -resume or -eco-base, not both")
	case *resume != "":
		st, rerr := snap.ReadFile(*resume)
		if rerr != nil {
			return fmt.Errorf("reading checkpoint %s: %w", *resume, rerr)
		}
		// Fail the config check before any placement work, with a hint at
		// the fix: the checkpoint records the knobs it ran under, and
		// resuming under different ones would finish a run neither
		// configuration describes.
		if verr := core.ValidateResumeConfig(cfg, st); verr != nil {
			return fmt.Errorf("%w\n(make the flags match the checkpointed run, or drop -resume to place from scratch)", verr)
		}
		fmt.Printf("resume:    %s (stage %s, round %d)\n", *resume, st.Stage, st.Round)
		res, err = placer.PlaceFromCheckpoint(ctx, d, st)
	case *ecoBase != "":
		res, err = placeEco(ctx, placer, d, *ecoBase, cfg, rec)
	default:
		res, err = placer.PlaceContext(ctx, d)
	}
	if err != nil {
		return flushCanceledReport(rec, *report, *tracePath, cfg, d, err)
	}
	total := time.Since(t0)

	fmt.Printf("placement: HPWL gp=%.4g legal=%.4g final=%.4g\n", res.HPWLGlobal, res.HPWLLegal, res.HPWLFinal)
	fmt.Printf("quality:   overlaps=%d fence-violations=%d out-of-die=%d legal-fallbacks=%d\n",
		res.Overlaps, res.FenceViolations, res.OutOfDie, res.Legal.Fallbacks)
	fmt.Printf("effort:    levels=%d lambda-rounds=%d cg-iters=%d gp=%.2fs legal=%.2fs dp=%.2fs total=%.2fs\n",
		res.Levels, res.LambdaRounds, res.CGIters,
		res.GPTime.Seconds(), res.LegalTime.Seconds(), res.DPTime.Seconds(), total.Seconds())
	if *rowFlip {
		fmt.Printf("row-flip:  %d cells flipped to FS\n", legal.AlternateRowOrientations(d))
	}

	row := metrics.Row{
		Design: d.Name, Variant: variantName(cfg),
		HPWL: res.HPWLFinal, Overflow: res.Overflow,
		Overlaps: res.Overlaps, FenceViol: res.FenceViolations, OutOfDie: res.OutOfDie,
		GPTime: res.GPTime, TotalTime: total,
	}
	if *evaluate && d.Route != nil {
		m, err := route.EvaluateDesignCtx(ctx, d, route.RouterOptions{Workers: *workers, Obs: rec, TraceLabel: "evaluate"})
		if err != nil {
			return flushCanceledReport(rec, *report, *tracePath, cfg, d, err)
		}
		row.ScaledHPWL = m.ScaledHPWL
		row.RC = m.RC
		row.ACE = m.ACE
		fmt.Printf("routed:    %s\n", m)
	}
	fmt.Println(metrics.Header())
	fmt.Println(row)

	// Outputs.
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	plPath := filepath.Join(*outDir, d.Name+".out.pl")
	if err := writePl(plPath, d); err != nil {
		return err
	}
	fmt.Println("wrote", plPath)
	if *writeAll {
		aux, err := bookshelf.WriteDesign(d, *outDir)
		if err != nil {
			return err
		}
		fmt.Println("wrote", aux)
	}
	if *svg {
		if err := writeSVGs(*outDir, d); err != nil {
			return err
		}
	}
	if *report != "" || *tracePath != "" {
		rep := rec.BuildReport()
		rep.Tool = "placer"
		rep.Design = obs.DescribeDesign(d)
		rep.Config = cfg
		rep.Metrics = &row
		if *report != "" {
			if err := rep.WriteFile(*report); err != nil {
				return err
			}
			fmt.Println("wrote", *report)
		}
		if *tracePath != "" {
			if err := rep.WriteChromeTraceFile(*tracePath); err != nil {
				return err
			}
			fmt.Println("wrote", *tracePath)
		}
	}
	if *heatDir != "" {
		if err := writeHeatmaps(*heatDir, d.Name, rec); err != nil {
			return err
		}
	}
	return nil
}

// placeEco runs the incremental path: diff the loaded design against the
// base placement by name, transfer every reusable position, and repair
// only windows around the changed cells. A delta outside windowed
// repair's reach (macro churn, too many dirty cells) falls back to the
// full flow — an ECO invocation always ends in a legal placement.
func placeEco(ctx context.Context, placer *core.Placer, d *db.Design, basePath string, cfg core.Config, rec *obs.Recorder) (core.Result, error) {
	base, err := loadBasePlacement(basePath, d)
	if err != nil {
		return core.Result{}, fmt.Errorf("loading -eco-base %s: %w", basePath, err)
	}
	df := eco.DiffPlacement(d, base)
	fmt.Printf("eco:       base %s: %d changed, %d added, %d removed (%.1f%% reuse)\n",
		basePath, len(df.Changed), len(df.Added), len(df.RemovedNames), 100*df.ReuseRatio())
	eres, err := eco.Place(d, df, base, eco.Options{Workers: cfg.Workers, Obs: rec})
	if errors.Is(err, eco.ErrNeedFull) {
		fmt.Println("eco:       delta out of windowed repair's reach, placing from scratch")
		return placer.PlaceContext(ctx, d)
	}
	if err != nil {
		return core.Result{}, err
	}
	fmt.Printf("eco:       repaired %d cells in %d windows (%d frozen), legal %.2fs dp %.2fs\n",
		eres.Repaired, len(eres.Windows), eres.Frozen,
		eres.LegalTime.Seconds(), eres.DPTime.Seconds())
	return core.Result{
		HPWLFinal:       eres.HPWL,
		Overlaps:        eres.Overlaps,
		FenceViolations: eres.FenceViolations,
		OutOfDie:        eres.OutOfDie,
		Legal:           eres.Legal,
		LegalTime:       eres.LegalTime,
		DPTime:          eres.DPTime,
	}, nil
}

// loadBasePlacement reads an -eco-base file, sniffing the format: snap
// checkpoints carry the RPSN magic, everything else parses as a UCLA .pl.
func loadBasePlacement(path string, d *db.Design) (*eco.Placement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte(snap.Magic)) {
		st, err := snap.Decode(data)
		if err != nil {
			return nil, err
		}
		return eco.FromSnap(st, d)
	}
	return eco.ReadPl(bytes.NewReader(data))
}

// flushCanceledReport writes the -report and -trace post-mortems for a
// run that ended early — with the canceled marker when the cause was
// SIGINT or -timeout — and passes the run error through.
func flushCanceledReport(rec *obs.Recorder, report, trace string, cfg core.Config, d *db.Design, runErr error) error {
	if report == "" && trace == "" {
		return runErr
	}
	rep := rec.BuildReport()
	rep.Tool = "placer"
	rep.Design = obs.DescribeDesign(d)
	rep.Config = cfg
	rep.Canceled = errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)
	if report != "" {
		if err := rep.WriteFile(report); err != nil {
			fmt.Fprintln(os.Stderr, "placer: report:", err)
		} else {
			fmt.Println("wrote", report)
		}
	}
	if trace != "" {
		if err := rep.WriteChromeTraceFile(trace); err != nil {
			fmt.Fprintln(os.Stderr, "placer: trace:", err)
		} else {
			fmt.Println("wrote", trace)
		}
	}
	return runErr
}

// buildRecorder constructs the telemetry recorder the flags ask for, or
// nil (telemetry fully disabled) when none do. Resource sampling rides
// along whenever a report or trace will be rendered — it is a handful of
// runtime/metrics reads per stage, and both outputs attribute cost.
func buildRecorder(report, trace, heatDir string, verbose bool, level string) (*obs.Recorder, error) {
	if verbose && level == "" {
		level = "debug"
	}
	var logger *slog.Logger
	if level != "" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(level)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	}
	if report == "" && trace == "" && heatDir == "" && logger == nil {
		return nil, nil
	}
	return obs.New(obs.Config{
		Logger:          logger,
		CaptureHeatmaps: heatDir != "",
		SampleResources: report != "" || trace != "",
	}), nil
}

// writeHeatmaps renders every captured per-round congestion map as an SVG
// named <design>.<label>.svg.
func writeHeatmaps(dir, design string, rec *obs.Recorder) error {
	heats := rec.Heatmaps()
	if len(heats) == 0 {
		fmt.Fprintln(os.Stderr, "placer: no heatmaps captured (design has no route grid or routability loop disabled)")
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, h := range heats {
		path := filepath.Join(dir, fmt.Sprintf("%s.%s.svg", design, h.Label))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := viz.HeatmapSVG(f, h.NX, h.NY, h.Cong, 800); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func loadDesign(auxPath, synth string, seed int64) (*db.Design, error) {
	switch {
	case auxPath != "" && synth != "":
		return nil, fmt.Errorf("use either -aux or -synth, not both")
	case auxPath != "":
		return bookshelf.ReadDesign(auxPath)
	case synth != "":
		for _, cfg := range gen.Suite() {
			if cfg.Name == synth {
				if seed != 0 {
					cfg.Seed = seed
				}
				return gen.Generate(cfg)
			}
		}
		if synth == "congested" {
			s := int64(1)
			if seed != 0 {
				s = seed
			}
			return gen.Generate(gen.Congested(2000, s))
		}
		return nil, fmt.Errorf("unknown synthetic benchmark %q (try sb-a..sb-e or congested)", synth)
	default:
		return nil, fmt.Errorf("need -aux or -synth (run with -h for usage)")
	}
}

func variantName(cfg core.Config) string {
	name := cfg.Model
	if name == "" {
		name = "wa"
	}
	if cfg.DisableRoutability {
		name += "-blind"
	}
	if cfg.DisableFences {
		name += "-flat"
	}
	if cfg.DisableMultilevel {
		name += "-1lvl"
	}
	return name
}

// writePl emits just the placement (.pl) file; the bookshelf writer would
// emit the whole bundle, which -write-bookshelf covers separately.
func writePl(path string, d *db.Design) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "UCLA pl 1.0\n\n")
	for i := range d.Cells {
		c := &d.Cells[i]
		fmt.Fprintf(f, "%s %g %g : %s", c.Name, c.Pos.X, c.Pos.Y, c.Orient)
		if c.Fixed {
			fmt.Fprintf(f, " /FIXED")
		}
		fmt.Fprintln(f)
	}
	return nil
}

func writeSVGs(dir string, d *db.Design) error {
	pf, err := os.Create(filepath.Join(dir, d.Name+".placement.svg"))
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := viz.PlacementSVG(pf, d, 800); err != nil {
		return err
	}
	fmt.Println("wrote", pf.Name())
	if d.Route == nil {
		return nil
	}
	grid, err := route.NewGrid(d)
	if err != nil {
		return err
	}
	r := route.NewRouter(grid, route.RouterOptions{})
	r.RouteDesign(d)
	cf, err := os.Create(filepath.Join(dir, d.Name+".congestion.svg"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := viz.CongestionSVG(cf, grid, 800); err != nil {
		return err
	}
	fmt.Println("wrote", cf.Name())
	return nil
}
