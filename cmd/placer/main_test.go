package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
)

func TestVariantName(t *testing.T) {
	cases := []struct {
		cfg  core.Config
		want string
	}{
		{core.Config{}, "wa"},
		{core.Config{Model: "lse"}, "lse"},
		{core.Config{DisableRoutability: true}, "wa-blind"},
		{core.Config{DisableRoutability: true, DisableFences: true}, "wa-blind-flat"},
		{core.Config{Model: "lse", DisableMultilevel: true}, "lse-1lvl"},
	}
	for _, c := range cases {
		if got := variantName(c.cfg); got != c.want {
			t.Errorf("variantName(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestLoadDesignSynth(t *testing.T) {
	d, err := loadDesign("", "sb-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "sb-a" {
		t.Errorf("name = %q", d.Name)
	}
	if _, err := loadDesign("", "nope", 0); err == nil {
		t.Error("unknown synth accepted")
	}
	if _, err := loadDesign("", "", 0); err == nil {
		t.Error("no input accepted")
	}
	if _, err := loadDesign("x.aux", "sb-a", 0); err == nil {
		t.Error("both inputs accepted")
	}
}

func TestLoadDesignSeedOverride(t *testing.T) {
	a, err := loadDesign("", "sb-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadDesign("", "sb-a", 999)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cells {
		if a.Cells[i].Pos != b.Cells[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("seed override had no effect")
	}
}

// TestTraceMatchesReport runs the -report/-trace pipeline the CLI wires
// up (recorder with resource sampling → full placement → report + Chrome
// trace) on a tiny design, then cross-checks the two outputs: every
// top-level span in the report must appear as an "X" complete event in
// the trace with ts/dur equal to the report's start/duration (report is
// milliseconds, trace microseconds).
func TestTraceMatchesReport(t *testing.T) {
	d, err := gen.Generate(gen.Config{
		Name: "trace-t", Seed: 7,
		NumStdCells: 200, NumFixedMacros: 1, NumMovableMacros: 1,
		MacroSizeRows: 4, NumModules: 2, NumFences: 1, NumTerminals: 8,
		TargetUtil: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := buildRecorder("r.json", "t.json", "", false, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{DisableDP: true, Workers: 1, Obs: rec}
	placer, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placer.PlaceContext(context.Background(), d); err != nil {
		t.Fatal(err)
	}

	rep := rec.BuildReport()
	rep.Tool = "placer"
	dir := t.TempDir()
	repPath := filepath.Join(dir, "r.json")
	trPath := filepath.Join(dir, "t.json")
	if err := rep.WriteFile(repPath); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteChromeTraceFile(trPath); err != nil {
		t.Fatal(err)
	}

	var gotRep struct {
		Spans []struct {
			Name    string  `json:"name"`
			StartMS float64 `json:"start_ms"`
			DurMS   float64 `json:"dur_ms"`
		} `json:"spans"`
		Attribution map[string]*struct {
			WallMS       float64 `json:"wall_ms"`
			AllocObjects int64   `json:"alloc_objects"`
		} `json:"attribution"`
	}
	repData, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(repData, &gotRep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if len(gotRep.Spans) == 0 {
		t.Fatal("report has no spans")
	}
	if gotRep.Attribution["gp"] == nil || gotRep.Attribution["gp"].WallMS <= 0 {
		t.Errorf("report attribution missing gp: %+v", gotRep.Attribution)
	}

	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	trData, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(trData, &trace); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	type key struct {
		name string
		ts   float64
	}
	durs := map[key]float64{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			durs[key{ev.Name, ev.Ts}] = ev.Dur
		}
	}
	for _, sp := range gotRep.Spans {
		dur, ok := durs[key{sp.Name, sp.StartMS * 1e3}]
		if !ok {
			t.Errorf("span %q (start %.3fms) has no matching trace event", sp.Name, sp.StartMS)
			continue
		}
		if dur != sp.DurMS*1e3 {
			t.Errorf("span %q: trace dur %.1fus, report %.3fms", sp.Name, dur, sp.DurMS)
		}
	}
}

func TestWritePl(t *testing.T) {
	b := db.NewBuilder("t", geom.NewRect(0, 0, 10, 10))
	ci := b.AddStdCell("a", 2, 2)
	fx := b.AddMacro("m", 3, 3, true)
	d := b.MustDesign()
	d.Cells[ci].Pos = geom.Point{X: 1.5, Y: 2}
	d.Cells[fx].Pos = geom.Point{X: 5, Y: 5}
	path := filepath.Join(t.TempDir(), "out.pl")
	if err := writePl(path, d); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "a 1.5 2 : N") {
		t.Errorf("movable cell line missing: %q", out)
	}
	if !strings.Contains(out, "m 5 5 : N /FIXED") {
		t.Errorf("fixed macro line missing: %q", out)
	}
}
