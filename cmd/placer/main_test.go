package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/geom"
)

func TestVariantName(t *testing.T) {
	cases := []struct {
		cfg  core.Config
		want string
	}{
		{core.Config{}, "wa"},
		{core.Config{Model: "lse"}, "lse"},
		{core.Config{DisableRoutability: true}, "wa-blind"},
		{core.Config{DisableRoutability: true, DisableFences: true}, "wa-blind-flat"},
		{core.Config{Model: "lse", DisableMultilevel: true}, "lse-1lvl"},
	}
	for _, c := range cases {
		if got := variantName(c.cfg); got != c.want {
			t.Errorf("variantName(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestLoadDesignSynth(t *testing.T) {
	d, err := loadDesign("", "sb-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "sb-a" {
		t.Errorf("name = %q", d.Name)
	}
	if _, err := loadDesign("", "nope", 0); err == nil {
		t.Error("unknown synth accepted")
	}
	if _, err := loadDesign("", "", 0); err == nil {
		t.Error("no input accepted")
	}
	if _, err := loadDesign("x.aux", "sb-a", 0); err == nil {
		t.Error("both inputs accepted")
	}
}

func TestLoadDesignSeedOverride(t *testing.T) {
	a, err := loadDesign("", "sb-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadDesign("", "sb-a", 999)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cells {
		if a.Cells[i].Pos != b.Cells[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("seed override had no effect")
	}
}

func TestWritePl(t *testing.T) {
	b := db.NewBuilder("t", geom.NewRect(0, 0, 10, 10))
	ci := b.AddStdCell("a", 2, 2)
	fx := b.AddMacro("m", 3, 3, true)
	d := b.MustDesign()
	d.Cells[ci].Pos = geom.Point{X: 1.5, Y: 2}
	d.Cells[fx].Pos = geom.Point{X: 5, Y: 5}
	path := filepath.Join(t.TempDir(), "out.pl")
	if err := writePl(path, d); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "a 1.5 2 : N") {
		t.Errorf("movable cell line missing: %q", out)
	}
	if !strings.Contains(out, "m 5 5 : N /FIXED") {
		t.Errorf("fixed macro line missing: %q", out)
	}
}
