// Command evaluate scores an existing placement the way the DAC-2012
// contest evaluator did: it loads a Bookshelf design (the .pl carries the
// placement to score), globally routes it over the .route grid, and
// reports HPWL, the ACE congestion profile, RC and scaled HPWL. It also
// performs legality checks so a placement's violations are visible next to
// its score.
//
// Usage:
//
//	evaluate -aux design.aux [-pl placed.pl] [-svg out.svg]
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/bookshelf"
	"repro/internal/buildinfo"
	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		auxPath = flag.String("aux", "", "Bookshelf .aux file")
		plPath  = flag.String("pl", "", "alternative .pl with the placement to score")
		svgPath = flag.String("svg", "", "write a congestion heatmap SVG here")
		rrr     = flag.Int("rrr", 0, "rip-up and reroute rounds (0 = default)")
		workers = flag.Int("workers", 0, "router worker count (0 = auto, honors REPRO_WORKERS)")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); a partial -report is still written")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
		report  = flag.String("report", "", "write a machine-readable JSON run report to this file")
		trace   = flag.String("trace", "", "write a Chrome trace-event JSON (open in Perfetto/chrome://tracing) to this file")
		asJSON  = flag.Bool("json", false, "also print the score row as JSON on stdout")
		fprint  = flag.Bool("fingerprint", false, "print the design's canonical fingerprint (hex) and exit without scoring")
		verbose = flag.Bool("verbose", false, "debug logging to stderr (shorthand for -log-level debug)")
		logLvl  = flag.String("log-level", "", "stderr log level: debug, info, warn or error (empty = logging off)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}
	if *auxPath == "" {
		return fmt.Errorf("need -aux (run with -h for usage)")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: memprofile:", err)
			}
		}()
	}
	rec, err := buildRecorder(*report, *trace, *verbose, *logLvl)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM and -timeout cancel the routing run through its
	// context; the -report post-mortem is still flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	d, err := bookshelf.ReadDesign(*auxPath)
	if err != nil {
		return err
	}
	if *plPath != "" {
		if err := applyPl(d, *plPath); err != nil {
			return err
		}
	}
	if *fprint {
		// The canonical identity of this placement problem: what placerd
		// keys its artifact cache by. Printed alone so scripts can diff
		// reformatted Bookshelf bundles without scoring them.
		fp := d.Fingerprint()
		fmt.Printf("%x  %s\n", fp, d.Name)
		return nil
	}
	fmt.Println(d.ComputeStats())
	overlaps, fenceViol := d.OverlapViolations(), d.FenceViolations()
	fmt.Printf("legality: overlaps=%d fence-violations=%d out-of-die=%d\n",
		overlaps, fenceViol, d.OutOfDie())

	row := metrics.Row{
		Design: d.Name, Variant: "eval",
		HPWL: d.HPWL(), Overlaps: overlaps, FenceViol: fenceViol,
		OutOfDie: d.OutOfDie(),
	}
	if d.Route == nil {
		fmt.Printf("HPWL %.6g (no .route file: congestion scoring skipped)\n", d.HPWL())
		return finishEvaluate(rec, d, row, *report, *trace, *asJSON, *rrr, *workers)
	}
	m, err := route.EvaluateDesignCtx(ctx, d, route.RouterOptions{
		MaxRRRIters: *rrr, Workers: *workers, Obs: rec, TraceLabel: "evaluate",
	})
	if err != nil {
		return flushCanceledReport(rec, *report, *trace, d, *rrr, *workers, err)
	}
	// The row carries no wall time: evaluate's stdout stays byte-identical
	// across runs and worker counts (the determinism check diffs it), and
	// timing lives in the -report spans and route trace instead.
	row.ScaledHPWL = m.ScaledHPWL
	row.RC = m.RC
	row.ACE = m.ACE
	row.Overflow = m.Overflow
	fmt.Printf("score: %s\n", m)
	fmt.Printf("ACE:  ")
	for i, pct := range route.ACEPercentiles {
		fmt.Printf(" %.1f%%=%.3f", pct, m.ACE[i])
	}
	fmt.Println()

	if *svgPath != "" {
		grid, err := route.NewGrid(d)
		if err != nil {
			return err
		}
		r := route.NewRouter(grid, route.RouterOptions{
			MaxRRRIters: *rrr, Workers: *workers, Obs: rec, TraceLabel: "svg",
		})
		r.RouteDesign(d)
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.CongestionSVG(f, grid, 800); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	return finishEvaluate(rec, d, row, *report, *trace, *asJSON, *rrr, *workers)
}

// flushCanceledReport writes the -report and -trace post-mortems for a
// run that ended early — with the canceled marker when the cause was
// SIGINT or -timeout — and passes the run error through.
func flushCanceledReport(rec *obs.Recorder, report, trace string, d *db.Design, rrr, workers int, runErr error) error {
	if report == "" && trace == "" {
		return runErr
	}
	rep := rec.BuildReport()
	rep.Tool = "evaluate"
	rep.Design = obs.DescribeDesign(d)
	rep.Config = map[string]any{"rrr": rrr, "workers": workers}
	rep.Canceled = errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)
	if report != "" {
		if err := rep.WriteFile(report); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate: report:", err)
		} else {
			fmt.Println("wrote", report)
		}
	}
	if trace != "" {
		if err := rep.WriteChromeTraceFile(trace); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate: trace:", err)
		} else {
			fmt.Println("wrote", trace)
		}
	}
	return runErr
}

// buildRecorder constructs the telemetry recorder the flags ask for, or
// nil (telemetry fully disabled) when none do.
func buildRecorder(report, trace string, verbose bool, level string) (*obs.Recorder, error) {
	if verbose && level == "" {
		level = "debug"
	}
	var logger *slog.Logger
	if level != "" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(level)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	}
	if report == "" && trace == "" && logger == nil {
		return nil, nil
	}
	return obs.New(obs.Config{
		Logger:          logger,
		SampleResources: report != "" || trace != "",
	}), nil
}

// finishEvaluate prints the score row (text table, plus JSON with -json)
// and writes the run report and trace when requested.
func finishEvaluate(rec *obs.Recorder, d *db.Design, row metrics.Row, report, trace string, asJSON bool, rrr, workers int) error {
	fmt.Println(metrics.Header())
	fmt.Println(row)
	if asJSON {
		var tbl metrics.Table
		tbl.Add(row)
		if err := tbl.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if report == "" && trace == "" {
		return nil
	}
	rep := rec.BuildReport()
	rep.Tool = "evaluate"
	rep.Design = obs.DescribeDesign(d)
	rep.Config = map[string]any{"rrr": rrr, "workers": workers}
	rep.Metrics = &row
	if report != "" {
		if err := rep.WriteFile(report); err != nil {
			return err
		}
		fmt.Println("wrote", report)
	}
	if trace != "" {
		if err := rep.WriteChromeTraceFile(trace); err != nil {
			return err
		}
		fmt.Println("wrote", trace)
	}
	return nil
}

// applyPl overrides cell positions from a standalone .pl file.
func applyPl(d *db.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || strings.EqualFold(fields[0], "UCLA") {
			continue
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		ci := d.CellIndex(fields[0])
		if ci < 0 {
			continue
		}
		c := &d.Cells[ci]
		c.Pos = geom.Point{X: x, Y: y}
		rest := fields[3:]
		if len(rest) > 0 && rest[0] == ":" {
			rest = rest[1:]
		}
		if len(rest) > 0 {
			if o, ok := db.ParseOrient(rest[0]); ok {
				c.Orient = o
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("applied %d positions from %s\n", n, path)
	return nil
}
