// Command evaluate scores an existing placement the way the DAC-2012
// contest evaluator did: it loads a Bookshelf design (the .pl carries the
// placement to score), globally routes it over the .route grid, and
// reports HPWL, the ACE congestion profile, RC and scaled HPWL. It also
// performs legality checks so a placement's violations are visible next to
// its score.
//
// Usage:
//
//	evaluate -aux design.aux [-pl placed.pl] [-svg out.svg]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bookshelf"
	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		auxPath = flag.String("aux", "", "Bookshelf .aux file")
		plPath  = flag.String("pl", "", "alternative .pl with the placement to score")
		svgPath = flag.String("svg", "", "write a congestion heatmap SVG here")
		rrr     = flag.Int("rrr", 0, "rip-up and reroute rounds (0 = default)")
		workers = flag.Int("workers", 0, "router worker count (0 = auto, honors REPRO_WORKERS)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if *auxPath == "" {
		return fmt.Errorf("need -aux (run with -h for usage)")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: memprofile:", err)
			}
		}()
	}
	d, err := bookshelf.ReadDesign(*auxPath)
	if err != nil {
		return err
	}
	if *plPath != "" {
		if err := applyPl(d, *plPath); err != nil {
			return err
		}
	}
	fmt.Println(d.ComputeStats())
	fmt.Printf("legality: overlaps=%d fence-violations=%d out-of-die=%d\n",
		d.OverlapViolations(), d.FenceViolations(), d.OutOfDie())

	if d.Route == nil {
		fmt.Printf("HPWL %.6g (no .route file: congestion scoring skipped)\n", d.HPWL())
		return nil
	}
	m, err := route.EvaluateDesign(d, route.RouterOptions{MaxRRRIters: *rrr, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("score: %s\n", m)
	fmt.Printf("ACE:  ")
	for i, pct := range route.ACEPercentiles {
		fmt.Printf(" %.1f%%=%.3f", pct, m.ACE[i])
	}
	fmt.Println()

	if *svgPath != "" {
		grid, err := route.NewGrid(d)
		if err != nil {
			return err
		}
		r := route.NewRouter(grid, route.RouterOptions{MaxRRRIters: *rrr, Workers: *workers})
		r.RouteDesign(d)
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.CongestionSVG(f, grid, 800); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	return nil
}

// applyPl overrides cell positions from a standalone .pl file.
func applyPl(d *db.Design, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || strings.EqualFold(fields[0], "UCLA") {
			continue
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		ci := d.CellIndex(fields[0])
		if ci < 0 {
			continue
		}
		c := &d.Cells[ci]
		c.Pos = geom.Point{X: x, Y: y}
		rest := fields[3:]
		if len(rest) > 0 && rest[0] == ":" {
			rest = rest[1:]
		}
		if len(rest) > 0 {
			if o, ok := db.ParseOrient(rest[0]); ok {
				c.Orient = o
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("applied %d positions from %s\n", n, path)
	return nil
}
