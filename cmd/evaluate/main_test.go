package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
)

func TestApplyPl(t *testing.T) {
	b := db.NewBuilder("t", geom.NewRect(0, 0, 100, 100))
	a := b.AddStdCell("a", 2, 2)
	c := b.AddStdCell("c", 2, 2)
	d := b.MustDesign()

	pl := `UCLA pl 1.0
# a comment
a 10 20 : FS
c 30.5 40 : N /FIXED
ghost 1 2 : N
`
	path := filepath.Join(t.TempDir(), "p.pl")
	if err := os.WriteFile(path, []byte(pl), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := applyPl(d, path); err != nil {
		t.Fatal(err)
	}
	if d.Cells[a].Pos != (geom.Point{X: 10, Y: 20}) || d.Cells[a].Orient != db.FS {
		t.Errorf("cell a = %v/%v", d.Cells[a].Pos, d.Cells[a].Orient)
	}
	if d.Cells[c].Pos != (geom.Point{X: 30.5, Y: 40}) {
		t.Errorf("cell c = %v", d.Cells[c].Pos)
	}
}

func TestApplyPlMissingFile(t *testing.T) {
	b := db.NewBuilder("t", geom.NewRect(0, 0, 10, 10))
	b.AddStdCell("a", 1, 1)
	d := b.MustDesign()
	if err := applyPl(d, "/nonexistent/file.pl"); err == nil {
		t.Error("missing file accepted")
	}
}
