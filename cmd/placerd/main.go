// Command placerd serves the placement flow as a job server: an HTTP
// JSON API that accepts Bookshelf placement jobs, runs them on a bounded
// worker pool, and streams per-round progress live over Server-Sent
// Events.
//
// Usage:
//
//	placerd [-addr :8080] [-queue 16] [-jobs 1] [-allow-dir bench/] [-state-dir state/]
//
// Submit a job and follow it:
//
//	curl -s localhost:8080/jobs -d '{"synth":"sb-a"}'
//	curl -N localhost:8080/jobs/job-000001/events
//	curl -s localhost:8080/jobs/job-000001/report | jq .rounds
//
// SIGINT/SIGTERM triggers a graceful drain: in-flight jobs get -drain to
// finish, then are canceled through their contexts (observed within one
// GP round or reroute batch).
//
// With -state-dir the daemon is durable: jobs are journaled (spec,
// progress events, placement checkpoints, artifacts), a restarted daemon
// recovers them — re-enqueueing interrupted jobs and resuming each from
// its last checkpoint — and completed results are cached in a
// content-addressed store so an identical resubmission is answered
// instantly without running the placer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", 16, "bounded job queue size (submissions beyond it get 429)")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently")
		workers  = flag.Int("workers", 0, "per-job kernel worker count (0 = auto, honors REPRO_WORKERS)")
		allowDir = flag.String("allow-dir", "", "directory tree .aux path jobs may reference (empty = path jobs disabled)")
		stateDir = flag.String("state-dir", "", "durable state directory: job journal, checkpoints and artifact cache (empty = in-memory only)")
		storeMax = flag.Int64("store-max-bytes", 0, "artifact cache size bound in bytes (0 = 256 MiB, negative = unbounded; needs -state-dir)")
		ckEvery  = flag.Int("checkpoint-every", 1, "lambda rounds between job checkpoints (needs -state-dir)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline before in-flight jobs are canceled")
		maxBody  = flag.Int64("max-body", 32<<20, "submission body size limit in bytes")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		verbose  = flag.Bool("verbose", false, "debug logging (shorthand for -log-level debug)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	if *verbose {
		*logLevel = "debug"
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))

	mgr, err := serve.NewManager(serve.Options{
		QueueSize:       *queue,
		Jobs:            *jobs,
		Workers:         *workers,
		AllowDir:        *allowDir,
		StateDir:        *stateDir,
		StoreMaxBytes:   *storeMax,
		CheckpointEvery: *ckEvery,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	api := serve.NewServer(mgr, serve.ServerOptions{MaxBodyBytes: *maxBody, Pprof: *pprofOn})
	srv := &http.Server{Addr: *addr, Handler: api}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("placerd listening", "addr", *addr, "queue", *queue, "jobs", *jobs)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Info("draining", "deadline", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Shutdown(dctx); err != nil {
		logger.Warn("drain deadline hit, jobs canceled", "err", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
