// Command placerd serves the placement flow as a job server: an HTTP
// JSON API that accepts Bookshelf placement jobs, runs them on a bounded
// worker pool, and streams per-round progress live over Server-Sent
// Events.
//
// Usage:
//
//	placerd [-addr :8080] [-queue 16] [-jobs 1] [-allow-dir bench/] [-state-dir state/]
//
// Submit a job and follow it:
//
//	curl -s localhost:8080/jobs -d '{"synth":"sb-a"}'
//	curl -N localhost:8080/jobs/job-000001/events
//	curl -s localhost:8080/jobs/job-000001/report | jq .rounds
//
// SIGINT/SIGTERM triggers a graceful drain: in-flight jobs get -drain to
// finish, then are canceled through their contexts (observed within one
// GP round or reroute batch).
//
// With -state-dir the daemon is durable: jobs are journaled (spec,
// progress events, placement checkpoints, artifacts), a restarted daemon
// recovers them — re-enqueueing interrupted jobs and resuming each from
// its last checkpoint — and completed results are cached in a
// content-addressed store so an identical resubmission is answered
// instantly without running the placer.
//
// # Fleet modes
//
// placerd can also run as part of a fleet (internal/fleet):
//
//	placerd -coordinator -addr :8080
//	placerd -join http://coordinator:8080 -addr :8081
//
// A coordinator accepts the same /jobs API as a single daemon but runs
// nothing itself: it leases jobs to joined workers, reassigns them when a
// worker dies mid-job (resuming from the last fetched checkpoint), and
// stitches every worker's progress events into one gapless SSE stream
// per job. A worker with -join runs the normal placerd service and
// additionally registers with the coordinator and heartbeats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", 16, "bounded job queue size (submissions beyond it get 429)")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently")
		workers  = flag.Int("workers", 0, "per-job kernel worker count (0 = auto, honors REPRO_WORKERS)")
		congSrc  = flag.String("congestion-source", "", "default routability congestion signal for jobs that don't pick one: route or estimate")
		routeLst = flag.Int("route-last-rounds", 0, "default trailing router rounds for estimate-mode jobs (0 = core default 1)")
		allowDir = flag.String("allow-dir", "", "directory tree .aux path jobs may reference (empty = path jobs disabled)")
		stateDir = flag.String("state-dir", "", "durable state directory: job journal, checkpoints and artifact cache (empty = in-memory only)")
		storeMax = flag.Int64("store-max-bytes", 0, "artifact cache size bound in bytes (0 = 256 MiB, negative = unbounded; needs -state-dir)")
		ckEvery  = flag.Int("checkpoint-every", 1, "lambda rounds between job checkpoints (needs -state-dir)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline before in-flight jobs are canceled")
		maxBody  = flag.Int64("max-body", 32<<20, "submission body size limit in bytes")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		verbose  = flag.Bool("verbose", false, "debug logging (shorthand for -log-level debug)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator (leases jobs to joined workers instead of running them)")
		join        = flag.String("join", "", "coordinator base URL to register this worker with (e.g. http://host:8080)")
		advertise   = flag.String("advertise", "", "base URL the coordinator reaches this worker under (default: derived from the bound listen address)")
		lease       = flag.Duration("lease", 15*time.Second, "coordinator: assignment lease TTL (renewed by progress events and heartbeats)")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "coordinator: heartbeat interval advertised to workers")
		retryBudget = flag.Int("retry-budget", 3, "coordinator: reassignments per job before it is marked failed")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}
	if *coordinator && *join != "" {
		return fmt.Errorf("-coordinator and -join are mutually exclusive")
	}
	switch *congSrc {
	case "", "route", "estimate":
	default:
		return fmt.Errorf("bad -congestion-source %q (want route or estimate)", *congSrc)
	}

	if *verbose {
		*logLevel = "debug"
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))

	// Bind before anything else so -addr :0 works and the actual address
	// can be logged (tests and fleet quickstarts parse it).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator {
		return runCoordinator(ctx, stop, ln, bound, logger, coordinatorConfig{
			queue: *queue, workers: *workers, allowDir: *allowDir,
			stateDir: *stateDir, storeMax: *storeMax, maxBody: *maxBody,
			lease: *lease, heartbeat: *heartbeat, retryBudget: *retryBudget,
			drain: *drain,
		})
	}

	mgr, err := serve.NewManager(serve.Options{
		QueueSize:        *queue,
		Jobs:             *jobs,
		Workers:          *workers,
		CongestionSource: *congSrc,
		RouteLastRounds:  *routeLst,
		AllowDir:         *allowDir,
		StateDir:         *stateDir,
		StoreMaxBytes:    *storeMax,
		CheckpointEvery:  *ckEvery,
		Logger:           logger,
	})
	if err != nil {
		ln.Close()
		return err
	}
	api := serve.NewServer(mgr, serve.ServerOptions{MaxBodyBytes: *maxBody, Pprof: *pprofOn})
	srv := &http.Server{Handler: api}

	var agent *fleet.Agent
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseURL(bound)
		}
		agent, err = fleet.StartAgent(fleet.AgentOptions{
			Coordinator: *join,
			Advertise:   adv,
			Capacity:    *jobs,
			Manager:     mgr,
			Logger:      logger,
		})
		if err != nil {
			ln.Close()
			return err
		}
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("placerd listening", "addr", bound, "queue", *queue, "jobs", *jobs, "join", *join)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Info("draining", "deadline", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if agent != nil {
		// Deregister first so the coordinator requeues this worker's jobs
		// immediately rather than waiting out their leases.
		if err := agent.Close(dctx); err != nil {
			logger.Warn("fleet deregistration failed", "err", err)
		}
	}
	if err := mgr.Shutdown(dctx); err != nil {
		logger.Warn("drain deadline hit, jobs canceled", "err", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

type coordinatorConfig struct {
	queue, workers, retryBudget int
	allowDir, stateDir          string
	storeMax, maxBody           int64
	lease, heartbeat, drain     time.Duration
}

func runCoordinator(ctx context.Context, stop func(), ln net.Listener, bound string, logger *slog.Logger, cfg coordinatorConfig) error {
	coord, err := fleet.NewCoordinator(fleet.Options{
		QueueSize:      cfg.queue,
		LeaseTTL:       cfg.lease,
		HeartbeatEvery: cfg.heartbeat,
		RetryBudget:    cfg.retryBudget,
		AllowDir:       cfg.allowDir,
		Workers:        cfg.workers,
		StateDir:       cfg.stateDir,
		StoreMaxBytes:  cfg.storeMax,
		Logger:         logger,
	})
	if err != nil {
		ln.Close()
		return err
	}
	api := fleet.NewServer(coord, fleet.ServerOptions{MaxBodyBytes: cfg.maxBody})
	srv := &http.Server{Handler: api}

	errc := make(chan error, 1)
	go func() {
		logger.Info("placerd coordinator listening", "addr", bound, "queue", cfg.queue, "lease", cfg.lease)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("coordinator shutting down", "deadline", cfg.drain)

	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := coord.Shutdown(dctx); err != nil {
		logger.Warn("coordinator shutdown deadline hit", "err", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// advertiseURL turns the bound listen address into a URL the coordinator
// can dial. A wildcard host (":8081", "0.0.0.0", "::") is rewritten to
// loopback — good for single-machine fleets; multi-host fleets should
// pass -advertise explicitly.
func advertiseURL(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return "http://" + bound
	}
	switch host {
	case "", "0.0.0.0", "::":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
