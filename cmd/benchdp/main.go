// Command benchdp is a small benchmark driver for detailed placement. It
// legalizes a scattered synthetic design, runs the dp passes at one or
// more worker counts, and emits a machine-readable JSON report
// (BENCH_dp.json by default) — trial moves per second, allocations per
// trial, HPWL delta — so the perf trajectory of the incremental-HPWL
// engine can be tracked across commits alongside the router's.
//
// Each report also measures the pre-engine serial baseline: a faithful
// reconstruction (legacy.go) of the detailed placement this repo shipped
// before the incremental engine — a fresh map[int]bool plus a full
// db.NetHPWL pin rescan of every touched net on each candidate move.
// Both sides count one trial per candidate evaluation, so moves/sec
// compares like with like; run speedups are reported against it.
//
// Usage:
//
//	go run ./cmd/benchdp                    # default suite -> BENCH_dp.json
//	go run ./cmd/benchdp -cells 2000 -workers 1,8 -out -   # print to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/db"
	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
)

// Run is one measured detailed-placement configuration.
type Run struct {
	Design      string  `json:"design"`
	Cells       int     `json:"cells"`
	Workers     int     `json:"workers"`
	Passes      int     `json:"passes"`
	Trials      int     `json:"trials"`
	WallSeconds float64 `json:"wall_seconds"`
	MovesPerSec float64 `json:"moves_per_sec"`
	// AllocsPerOp and BytesPerOp are per trial move, measured over the
	// whole Optimize call (including cache construction), best repetition.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	HPWLBefore  float64 `json:"hpwl_before"`
	HPWLAfter   float64 `json:"hpwl_after"`
	Swaps       int     `json:"swaps"`
	Reorders    int     `json:"reorders"`
	Shifts      int     `json:"shifts"`
	// Speedup is MovesPerSec over the legacy serial baseline's.
	Speedup float64 `json:"speedup_vs_baseline"`
}

// Baseline is the legacy-style serial evaluator measurement for one
// design size.
type Baseline struct {
	Cells       int     `json:"cells"`
	Trials      int     `json:"trials"`
	WallSeconds float64 `json:"wall_seconds"`
	MovesPerSec float64 `json:"moves_per_sec"`
}

// Report is the whole emitted document.
type Report struct {
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Baselines  []Baseline `json:"baselines"`
	Runs       []Run      `json:"runs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "BENCH_dp.json", "output file (- for stdout)")
		cells   = flag.String("cells", "2000", "comma-separated design sizes")
		workers = flag.String("workers", "1,2,8", "comma-separated worker counts")
		passes  = flag.Int("passes", 2, "dp passes per run")
		seed    = flag.Int64("seed", 3, "benchmark design seed")
		repeat  = flag.Int("repeat", 3, "timed repetitions per configuration (best wall time wins)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}

	wlist, err := parseInts(*workers)
	if err != nil {
		return err
	}
	clist, err := parseInts(*cells)
	if err != nil {
		return err
	}

	rep := Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range clist {
		d, start, err := setup(n, *seed)
		if err != nil {
			return err
		}
		base := measureBaseline(d, start, n, *passes)
		rep.Baselines = append(rep.Baselines, base)
		fmt.Fprintf(os.Stderr, "%s cells=%d baseline: %d trials in %.3fs (%.0f moves/s)\n",
			d.Name, n, base.Trials, base.WallSeconds, base.MovesPerSec)
		for _, w := range wlist {
			r := measure(d, start, n, w, *passes, *repeat)
			if base.MovesPerSec > 0 {
				r.Speedup = r.MovesPerSec / base.MovesPerSec
			}
			rep.Runs = append(rep.Runs, r)
			fmt.Fprintf(os.Stderr, "%s workers=%d: %d trials in %.3fs (%.0f moves/s, %.2f allocs/op, %.1fx baseline)\n",
				r.Design, w, r.Trials, r.WallSeconds, r.MovesPerSec, r.AllocsPerOp, r.Speedup)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

// setup builds and legalizes the benchmark design, returning it plus a
// snapshot of every cell position (the common starting point restored
// before each measured run).
func setup(cells int, seed int64) (*db.Design, []geom.Point, error) {
	d := gen.MustGenerate(gen.Congested(cells, seed))
	// Deterministic spread so nets have extent without running placement.
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
		if rg := d.CellRegion(ci); rg != db.NoRegion {
			c.SetCenter(d.Regions[rg].Nearest(c.Center()))
		}
	}
	legal.LegalizeMacros(d)
	if _, err := legal.LegalizeCells(d); err != nil {
		return nil, nil, err
	}
	start := make([]geom.Point, len(d.Cells))
	for ci := range d.Cells {
		start[ci] = d.Cells[ci].Pos
	}
	return d, start, nil
}

func restore(d *db.Design, start []geom.Point) {
	for ci := range d.Cells {
		d.Cells[ci].Pos = start[ci]
	}
}

func measure(d *db.Design, start []geom.Point, cells, workers, passes, repeat int) Run {
	if repeat < 1 {
		repeat = 1
	}
	var m0, m1 runtime.MemStats
	best := time.Duration(1<<63 - 1)
	var allocs, bytes uint64
	var res dp.Result
	for i := 0; i < repeat; i++ {
		restore(d, start)
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res = dp.Optimize(d, dp.Options{Passes: passes, Workers: workers})
		el := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if el < best {
			best = el
			allocs = m1.Mallocs - m0.Mallocs
			bytes = m1.TotalAlloc - m0.TotalAlloc
		}
	}
	run := Run{
		Design: d.Name, Cells: cells, Workers: res.Workers, Passes: passes,
		Trials: res.Trials, WallSeconds: best.Seconds(),
		HPWLBefore: res.Before, HPWLAfter: res.After,
		Swaps: res.Swaps, Reorders: res.Reorders, Shifts: res.Shifts,
	}
	if run.WallSeconds > 0 {
		run.MovesPerSec = float64(res.Trials) / run.WallSeconds
	}
	if res.Trials > 0 {
		run.AllocsPerOp = float64(allocs) / float64(res.Trials)
		run.BytesPerOp = float64(bytes) / float64(res.Trials)
	}
	return run
}

// measureBaseline times the reconstructed pre-engine serial passes
// (legacy.go) on the same starting placement and pass count.
func measureBaseline(d *db.Design, start []geom.Point, cells, passes int) Baseline {
	restore(d, start)
	t0 := time.Now()
	res := legacyOptimize(d, passes, 3, 10)
	el := time.Since(t0)
	b := Baseline{Cells: cells, Trials: res.trials, WallSeconds: el.Seconds()}
	if b.WallSeconds > 0 {
		b.MovesPerSec = float64(res.trials) / b.WallSeconds
	}
	return b
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
