package main

import (
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
)

// This file reconstructs the pre-engine detailed placement — the serial,
// rescan-everything implementation internal/dp shipped before the
// incremental-HPWL engine replaced it — as the benchmark baseline. Every
// candidate evaluation (a netCost pair around a trial swap, one window
// permutation, one row-shift probe) counts as one trial, the same unit
// the new engine reports, so moves/sec compares like with like.
//
// Congestion awareness is omitted: the benchmark runs both sides without
// a congestion map, where the old congestion code was a no-op.

type legacyResult struct {
	trials int
	swaps  int
}

type legacyOptimizer struct {
	d         *db.Design
	window    int
	radius    float64
	obstacles []geom.Rect
	trials    int
}

// legacyOptimize runs the old serial passes and reports the trial count.
func legacyOptimize(d *db.Design, passes, window int, radius float64) legacyResult {
	o := &legacyOptimizer{d: d, window: window, radius: radius}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() && c.Kind != db.Terminal && c.Area() > 0 {
			o.obstacles = append(o.obstacles, c.Rect())
		}
	}
	res := legacyResult{}
	for p := 0; p < passes; p++ {
		res.swaps += o.globalSwap()
		o.localReorder()
		o.rowShift()
	}
	res.trials = o.trials
	return res
}

// netCost is the replaced hot spot verbatim: a fresh map per call and a
// full pin rescan of every net touching the cells.
func (o *legacyOptimizer) netCost(cells ...int) float64 {
	seen := map[int]bool{}
	var total float64
	for _, ci := range cells {
		for _, pi := range o.d.Cells[ci].Pins {
			ni := o.d.Pins[pi].Net
			if seen[ni] {
				continue
			}
			seen[ni] = true
			w := o.d.Nets[ni].Weight
			if w == 0 {
				w = 1
			}
			total += w * o.d.NetHPWL(ni)
		}
	}
	return total
}

func (o *legacyOptimizer) gapBounds(left, right, y, h, x float64) (float64, float64) {
	for _, ob := range o.obstacles {
		if ob.Hi.Y <= y || ob.Lo.Y >= y+h {
			continue
		}
		if ob.Hi.X <= x && ob.Hi.X > left {
			left = ob.Hi.X
		}
		if ob.Lo.X >= x && ob.Lo.X < right {
			right = ob.Lo.X
		}
	}
	return left, right
}

func (o *legacyOptimizer) optimalPoint(ci int) (geom.Point, bool) {
	d := o.d
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	found := false
	for _, pi := range d.Cells[ci].Pins {
		ni := d.Pins[pi].Net
		for _, qi := range d.Nets[ni].Pins {
			if d.Pins[qi].Cell == ci {
				continue
			}
			p := d.PinPos(qi)
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
			found = true
		}
	}
	if !found {
		return geom.Point{}, false
	}
	return geom.Point{X: (minX + maxX) / 2, Y: (minY + maxY) / 2}, true
}

func (o *legacyOptimizer) fenceOK(ci int, r geom.Rect) bool {
	rg := o.d.CellRegion(ci)
	if rg != db.NoRegion {
		return o.d.Regions[rg].Contains(r)
	}
	for gi := range o.d.Regions {
		for _, fr := range o.d.Regions[gi].Rects {
			if fr.Overlaps(r) {
				return false
			}
		}
	}
	return true
}

func (o *legacyOptimizer) movableStd() []int {
	var out []int
	for ci := range o.d.Cells {
		c := &o.d.Cells[ci]
		if c.Movable() && c.Kind == db.StdCell {
			out = append(out, ci)
		}
	}
	return out
}

func (o *legacyOptimizer) globalSwap() int {
	d := o.d
	cells := o.movableStd()
	rowH := d.RowHeight()
	if rowH <= 0 {
		rowH = 1
	}
	bucket := rowH * o.radius
	type bkey struct{ x, y int }
	idx := make(map[bkey][]int)
	keyOf := func(p geom.Point) bkey {
		return bkey{int(p.X / bucket), int(p.Y / bucket)}
	}
	for _, ci := range cells {
		k := keyOf(d.Cells[ci].Pos)
		idx[k] = append(idx[k], ci)
	}
	swaps := 0
	for _, ci := range cells {
		c := &d.Cells[ci]
		want, ok := o.optimalPoint(ci)
		if !ok || want.Dist(c.Center()) < rowH {
			continue
		}
		k := keyOf(want)
		best := -1
		bestGain := 1e-9
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, cj := range idx[bkey{k.x + dx, k.y + dy}] {
					if cj == ci {
						continue
					}
					p := &d.Cells[cj]
					if p.W() != c.W() || p.H() != c.H() {
						continue
					}
					if !o.fenceOK(ci, p.Rect()) || !o.fenceOK(cj, c.Rect()) {
						continue
					}
					o.trials++
					before := o.netCost(ci, cj)
					d.Cells[ci].Pos, d.Cells[cj].Pos = d.Cells[cj].Pos, d.Cells[ci].Pos
					after := o.netCost(ci, cj)
					d.Cells[ci].Pos, d.Cells[cj].Pos = d.Cells[cj].Pos, d.Cells[ci].Pos
					if gain := before - after; gain > bestGain {
						bestGain = gain
						best = cj
					}
				}
			}
		}
		if best >= 0 {
			ki := keyOf(d.Cells[ci].Pos)
			kj := keyOf(d.Cells[best].Pos)
			d.Cells[ci].Pos, d.Cells[best].Pos = d.Cells[best].Pos, d.Cells[ci].Pos
			swaps++
			if ki != kj {
				idx[ki] = legacyReplace(idx[ki], ci, best)
				idx[kj] = legacyReplace(idx[kj], best, ci)
			}
		}
	}
	return swaps
}

func legacyReplace(s []int, old, new int) []int {
	for i, v := range s {
		if v == old {
			s[i] = new
			break
		}
	}
	return s
}

func (o *legacyOptimizer) rowsOf() map[float64][]int {
	rows := make(map[float64][]int)
	for _, ci := range o.movableStd() {
		rows[o.d.Cells[ci].Pos.Y] = append(rows[o.d.Cells[ci].Pos.Y], ci)
	}
	for y := range rows {
		r := rows[y]
		sort.Slice(r, func(a, b int) bool {
			if o.d.Cells[r[a]].Pos.X != o.d.Cells[r[b]].Pos.X {
				return o.d.Cells[r[a]].Pos.X < o.d.Cells[r[b]].Pos.X
			}
			return r[a] < r[b]
		})
	}
	return rows
}

func legacySortedRowYs(rows map[float64][]int) []float64 {
	ys := make([]float64, 0, len(rows))
	for y := range rows {
		ys = append(ys, y)
	}
	sort.Float64s(ys)
	return ys
}

func (o *legacyOptimizer) localReorder() int {
	d := o.d
	rows := o.rowsOf()
	w := o.window
	count := 0
	for _, y := range legacySortedRowYs(rows) {
		row := rows[y]
		for s := 0; s+w <= len(row); s++ {
			win := row[s : s+w]
			left := d.Cells[win[0]].Pos.X
			right := d.Die.Hi.X
			if s+w < len(row) {
				right = d.Cells[row[s+w]].Pos.X
			}
			_, right = o.gapBounds(left, right, y, d.Cells[win[0]].H(), left)
			var widthSum float64
			for _, ci := range win {
				widthSum += d.Cells[ci].W()
			}
			if widthSum > right-left+1e-9 {
				continue
			}
			if o.tryPermutations(win, left, right) {
				count++
				sort.Slice(win, func(a, b int) bool {
					return d.Cells[win[a]].Pos.X < d.Cells[win[b]].Pos.X
				})
			}
		}
	}
	return count
}

func (o *legacyOptimizer) tryPermutations(win []int, leftBound, rightBound float64) bool {
	d := o.d
	n := len(win)
	orig := make([]geom.Point, n)
	for i, ci := range win {
		orig[i] = d.Cells[ci].Pos
	}
	apply := func(perm []int) bool {
		x := leftBound
		for _, pi := range perm {
			ci := win[pi]
			c := &d.Cells[ci]
			c.Pos = geom.Point{X: x, Y: orig[0].Y}
			x += c.W()
		}
		if x > rightBound+1e-9 {
			return false
		}
		for _, pi := range perm {
			ci := win[pi]
			if !o.fenceOK(ci, d.Cells[ci].Rect()) {
				return false
			}
		}
		return true
	}
	restore := func() {
		for i, ci := range win {
			d.Cells[ci].Pos = orig[i]
		}
	}
	bestCost := o.netCost(win...)
	var bestPerm []int
	for _, perm := range legacyPermutations(n) {
		o.trials++
		if !apply(perm) {
			restore()
			continue
		}
		c := o.netCost(win...)
		if c < bestCost-1e-9 {
			bestCost = c
			bestPerm = append([]int(nil), perm...)
		}
		restore()
	}
	if bestPerm == nil {
		return false
	}
	apply(bestPerm)
	return true
}

func legacyPermutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	sub := legacyPermutations(n - 1)
	var out [][]int
	for _, p := range sub {
		for pos := 0; pos <= len(p); pos++ {
			np := make([]int, 0, n)
			np = append(np, p[:pos]...)
			np = append(np, n-1)
			np = append(np, p[pos:]...)
			out = append(out, np)
		}
	}
	return out
}

func (o *legacyOptimizer) rowShift() int {
	d := o.d
	rows := o.rowsOf()
	count := 0
	for _, y := range legacySortedRowYs(rows) {
		row := rows[y]
		for i, ci := range row {
			c := &d.Cells[ci]
			left := d.Die.Lo.X
			if i > 0 {
				p := &d.Cells[row[i-1]]
				left = p.Pos.X + p.W()
			}
			right := d.Die.Hi.X
			if i+1 < len(row) {
				right = d.Cells[row[i+1]].Pos.X
			}
			left, right = o.gapBounds(left, right, y, c.H(), c.Pos.X)
			if right-left < c.W() {
				continue
			}
			want, ok := o.optimalPoint(ci)
			if !ok {
				continue
			}
			targetX := math.Max(left, math.Min(want.X-c.W()/2, right-c.W()))
			if math.Abs(targetX-c.Pos.X) < 1e-9 {
				continue
			}
			oldPos := c.Pos
			o.trials++
			before := o.netCost(ci)
			c.Pos = geom.Point{X: targetX, Y: oldPos.Y}
			if !o.fenceOK(ci, c.Rect()) || o.netCost(ci) >= before-1e-9 {
				c.Pos = oldPos
				continue
			}
			count++
		}
	}
	return count
}
