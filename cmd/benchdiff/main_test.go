package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives run() through the real flag surface, like main does.
func runCLI(t *testing.T, args ...string) (int, error) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	oldArgs := os.Args
	os.Args = append([]string{"benchdiff"}, args...)
	t.Cleanup(func() { os.Args = oldArgs })
	return run()
}

func TestIdenticalFilesPass(t *testing.T) {
	code, err := runCLI(t, "-baseline", "testdata/baseline.json", "-current", "testdata/baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("identical files: exit %d, want 0", code)
	}
}

func TestWithinThresholdsPass(t *testing.T) {
	out := filepath.Join(t.TempDir(), "summary.md")
	code, err := runCLI(t, "-baseline", "testdata/baseline.json", "-current", "testdata/ok.json", "-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("within-threshold current: exit %d, want 0", code)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "No regressions") {
		t.Errorf("summary does not declare a clean pass:\n%s", md)
	}
}

// TestInjectedRegressionFails is the gate's own gate: a fixture with a
// doubled allocation rate on one run and a blown overflow on another must
// produce a non-zero exit and name both in the summary.
func TestInjectedRegressionFails(t *testing.T) {
	out := filepath.Join(t.TempDir(), "summary.md")
	code, err := runCLI(t, "-baseline", "testdata/baseline.json", "-current", "testdata/regress.json", "-out", out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("injected regression: exit %d, want 1", code)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"allocs_per_op", "bytes_per_op", "overflow", "regressed"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
}

func TestMissingRunIsARegression(t *testing.T) {
	trimmed := filepath.Join(t.TempDir(), "trimmed.json")
	data, err := os.ReadFile("testdata/ok.json")
	if err != nil {
		t.Fatal(err)
	}
	// Drop the 2000-cell run by renaming its design: the baseline run no
	// longer has a match.
	if err := os.WriteFile(trimmed, []byte(strings.Replace(string(data), `"cells": 2000`, `"cells": 2001`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := runCLI(t, "-baseline", "testdata/baseline.json", "-current", trimmed)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("missing baseline run: exit %d, want 1", code)
	}
}

func TestThresholdFlagsWiden(t *testing.T) {
	// The same regression fixture passes when the gates are opened wide.
	code, err := runCLI(t,
		"-baseline", "testdata/baseline.json", "-current", "testdata/regress.json",
		"-max-alloc-ratio", "3", "-max-quality-ratio", "2")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("widened thresholds: exit %d, want 0", code)
	}
}

func TestDiffSkipsAbsentMetrics(t *testing.T) {
	base := benchFile{Runs: []benchRun{{Design: "d", Cells: 10, Workers: 1, WallSeconds: 1, HPWLAfter: 100}}}
	cur := benchFile{Runs: []benchRun{{Design: "d", Cells: 10, Workers: 1, WallSeconds: 1.1, HPWLAfter: 100}}}
	res := diff(base, cur, thresholds{WallRatio: 1.5, AllocRatio: 1.1, QualityRatio: 1.01})
	for _, r := range res.rows {
		switch r.Metric {
		case "wall_seconds", "hpwl_after":
		default:
			t.Errorf("absent metric %q was compared", r.Metric)
		}
		if r.Regressed {
			t.Errorf("%s flagged as regression", r.Metric)
		}
	}
	if len(res.rows) != 2 {
		t.Errorf("compared %d metrics, want 2", len(res.rows))
	}
}

// TestMissingBaselineFilePasses pins the bootstrap path: a fresh
// benchmark whose baseline was never committed passes with a note (exit
// 0), so a new bench and its gate can land in the same PR. A missing
// *current* file stays an error (TestBadInputs) and a missing baseline
// *run* stays a failure (TestMissingRunIsARegression).
func TestMissingBaselineFilePasses(t *testing.T) {
	code, err := runCLI(t, "-baseline", "testdata/never-committed.json", "-current", "testdata/ok.json")
	if err != nil {
		t.Fatalf("missing baseline file errored: %v", err)
	}
	if code != 0 {
		t.Errorf("missing baseline file: exit %d, want 0 (pass with note)", code)
	}
}

// TestMinGates covers the higher-is-better floors: speedup and pearson
// (cmd/benchest) must not fall below baseline divided by -min-ratio, may
// improve without bound, and are skipped entirely for schemas that lack
// them.
func TestMinGates(t *testing.T) {
	th := thresholds{WallRatio: 1.5, AllocRatio: 1.1, QualityRatio: 1.01, MinRatio: 1.25}
	mk := func(speedup, pearson float64) benchFile {
		return benchFile{Runs: []benchRun{{
			Design: "d", Cells: 10, Workers: 1, WallSeconds: 1,
			Speedup: speedup, Pearson: pearson,
		}}}
	}
	base := mk(5.0, 0.9)

	res := diff(base, mk(4.2, 0.75), th) // above floors 4.0 and 0.72
	if regs := res.regressions(); len(regs) != 0 {
		t.Errorf("within-floor current flagged: %+v", regs)
	}

	res = diff(base, mk(3.0, 0.5), th) // below both floors
	var gated []string
	for _, r := range res.regressions() {
		if !r.Min {
			t.Errorf("floor regression not marked Min: %+v", r)
		}
		gated = append(gated, r.Metric)
	}
	if len(gated) != 2 {
		t.Errorf("regressed metrics = %v, want [speedup pearson]", gated)
	}

	res = diff(base, mk(50, 0.99), th) // improvement is unbounded
	if regs := res.regressions(); len(regs) != 0 {
		t.Errorf("improvement flagged: %+v", regs)
	}

	res = diff(mk(0, 0), mk(0, 0), th) // schema without the metrics
	for _, r := range res.rows {
		if r.Metric == "speedup" || r.Metric == "pearson" || r.Metric == "hotspot_overlap" {
			t.Errorf("floor row emitted for absent metric: %+v", r)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := runCLI(t); err == nil {
		t.Error("missing flags accepted")
	}
	if _, err := runCLI(t, "-baseline", "testdata/baseline.json", "-current", "testdata/nope.json"); err == nil {
		t.Error("missing current file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-baseline", empty, "-current", empty); err == nil {
		t.Error("empty runs accepted")
	}
}
