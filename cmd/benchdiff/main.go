// Command benchdiff gates performance regressions: it compares a fresh
// benchmark result file (cmd/benchroute -out, cmd/benchdp -out) against a
// committed baseline (BENCH_router.json, BENCH_dp.json) and exits
// non-zero when any gated metric regressed past its threshold.
//
// Usage:
//
//	benchdiff -baseline BENCH_router.json -current .bench/router.json [flags]
//
// Runs are matched by (design, cells, workers). Three classes of metric
// are gated, each with its own threshold because each has its own noise
// floor:
//
//   - wall_seconds     -max-wall-ratio (default 1.5): wall time is the
//     noisiest metric — machine-dependent, load-dependent — so the
//     default bound only catches gross slowdowns. CI should widen it.
//   - allocs_per_op / bytes_per_op  -max-alloc-ratio (default 1.1) plus a
//     small absolute slack: allocation counts are nearly deterministic,
//     so a 10% growth is a real change, but tiny baselines (0.07
//     allocs/op) need the slack to avoid false positives.
//   - overflow / max_congestion / hpwl_after  -max-quality-ratio
//     (default 1.01): result quality is deterministic at fixed seed and
//     worker count; any growth beyond float jitter is a regression.
//   - speedup / pearson / hotspot_overlap  -min-ratio (default 1.25):
//     higher-is-better metrics (cmd/benchest) are gated from below —
//     they fail when the current value falls under baseline divided by
//     the ratio. Speedup is wall-clock-derived, so it shares wall
//     noise; correlation is deterministic at fixed seed.
//
// A missing baseline *file* is tolerated: the comparison passes with a
// note telling the author to commit one, so a brand-new benchmark can
// land in the same PR as its gate without a chicken-and-egg failure. A
// baseline *run* missing from the current results stays a hard failure —
// that means coverage silently shrank.
//
// A markdown summary of every compared metric goes to -out (default
// stdout), so CI can publish the table as a step summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/atomicfile"
	"repro/internal/buildinfo"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline bench JSON (required)")
		currentPath  = flag.String("current", "", "freshly produced bench JSON to gate (required)")
		wallRatio    = flag.Float64("max-wall-ratio", 1.5, "fail when wall_seconds grows past this ratio")
		allocRatio   = flag.Float64("max-alloc-ratio", 1.1, "fail when allocs_per_op or bytes_per_op grows past this ratio (plus a small absolute slack)")
		qualityRatio = flag.Float64("max-quality-ratio", 1.01, "fail when overflow, max_congestion or hpwl_after grows past this ratio")
		minRatio     = flag.Float64("min-ratio", 1.25, "fail when a higher-is-better metric (speedup, pearson, hotspot_overlap) falls below baseline divided by this ratio")
		outPath      = flag.String("out", "-", "markdown summary destination (- = stdout)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return 0, nil
	}
	if *baselinePath == "" || *currentPath == "" {
		return 0, fmt.Errorf("need -baseline and -current (run with -h for usage)")
	}

	base, err := readBenchFile(*baselinePath)
	if os.IsNotExist(err) {
		// New benchmark, no committed baseline yet: pass with a note so
		// the benchmark and its gate can land in one PR. The current
		// results are still summarized for the author to commit.
		fmt.Fprintf(os.Stderr, "benchdiff: note: baseline %s does not exist; passing ungated — commit the current results as the baseline to arm the gate\n", *baselinePath)
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("reading baseline: %w", err)
	}
	cur, err := readBenchFile(*currentPath)
	if err != nil {
		return 0, fmt.Errorf("reading current: %w", err)
	}

	res := diff(base, cur, thresholds{
		WallRatio:    *wallRatio,
		AllocRatio:   *allocRatio,
		QualityRatio: *qualityRatio,
		MinRatio:     *minRatio,
	})
	md := res.markdown(*baselinePath, *currentPath)
	if *outPath == "-" {
		fmt.Print(md)
	} else if err := atomicfile.WriteFile(*outPath, []byte(md), 0o644); err != nil {
		return 0, err
	}
	if n := len(res.regressions()); n > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past threshold\n", n)
		return 1, nil
	}
	return 0, nil
}

// benchRun is the union of the per-run fields cmd/benchroute and
// cmd/benchdp emit. Metrics a schema lacks unmarshal to zero and are
// skipped by the gates.
type benchRun struct {
	Design  string `json:"design"`
	Cells   int    `json:"cells"`
	Workers int    `json:"workers"`

	WallSeconds float64 `json:"wall_seconds"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	Overflow      float64 `json:"overflow"`
	MaxCongestion float64 `json:"max_congestion"`
	HPWLAfter     float64 `json:"hpwl_after"`

	// Higher-is-better metrics (cmd/benchest), gated from below.
	Speedup        float64 `json:"speedup"`
	Pearson        float64 `json:"pearson"`
	HotspotOverlap float64 `json:"hotspot_overlap"`
}

// key identifies a run across the two files.
func (r benchRun) key() string {
	return fmt.Sprintf("%s/%dc/%dw", r.Design, r.Cells, r.Workers)
}

type benchFile struct {
	GoVersion string     `json:"go_version"`
	Runs      []benchRun `json:"runs"`
}

func readBenchFile(path string) (benchFile, error) {
	var bf benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Runs) == 0 {
		return bf, fmt.Errorf("%s: no runs", path)
	}
	return bf, nil
}

type thresholds struct {
	WallRatio    float64
	AllocRatio   float64
	QualityRatio float64
	MinRatio     float64
}

// Absolute slacks under the ratio gates: tiny per-op baselines (a DP
// trial allocates 0.07 objects) would otherwise fail on noise a ratio
// cannot express.
const (
	allocSlack = 1.0  // objects/op
	bytesSlack = 64.0 // bytes/op
)

// row is one compared metric.
type row struct {
	Run, Metric    string
	Base, Cur, Max float64 // Max is the allowed ceiling (or floor, see Min)
	Min            bool    // higher-is-better metric: Max is a floor
	Regressed      bool
	Note           string
}

type result struct {
	rows []row
}

func (res *result) regressions() []row {
	var out []row
	for _, r := range res.rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

// diff compares every baseline run against its match in cur.
func diff(base, cur benchFile, th thresholds) *result {
	curByKey := map[string]benchRun{}
	for _, r := range cur.Runs {
		curByKey[r.key()] = r
	}
	res := &result{}
	for _, b := range base.Runs {
		c, ok := curByKey[b.key()]
		if !ok {
			res.rows = append(res.rows, row{
				Run: b.key(), Metric: "(run)", Regressed: true,
				Note: "baseline run missing from current results",
			})
			continue
		}
		res.compare(b.key(), "wall_seconds", b.WallSeconds, c.WallSeconds, th.WallRatio, 0)
		res.compare(b.key(), "allocs_per_op", b.AllocsPerOp, c.AllocsPerOp, th.AllocRatio, allocSlack)
		res.compare(b.key(), "bytes_per_op", b.BytesPerOp, c.BytesPerOp, th.AllocRatio, bytesSlack)
		res.compare(b.key(), "overflow", b.Overflow, c.Overflow, th.QualityRatio, 0)
		res.compare(b.key(), "max_congestion", b.MaxCongestion, c.MaxCongestion, th.QualityRatio, 0)
		res.compare(b.key(), "hpwl_after", b.HPWLAfter, c.HPWLAfter, th.QualityRatio, 0)
		res.compareMin(b.key(), "speedup", b.Speedup, c.Speedup, th.MinRatio)
		res.compareMin(b.key(), "pearson", b.Pearson, c.Pearson, th.MinRatio)
		res.compareMin(b.key(), "hotspot_overlap", b.HotspotOverlap, c.HotspotOverlap, th.MinRatio)
	}
	sort.SliceStable(res.rows, func(i, j int) bool {
		if res.rows[i].Regressed != res.rows[j].Regressed {
			return res.rows[i].Regressed
		}
		return false
	})
	return res
}

// compare gates one metric: current must stay under base*ratio + slack.
// Metrics absent from a schema (zero in either file) are skipped.
func (res *result) compare(run, metric string, base, cur, ratio, slack float64) {
	if base == 0 || cur == 0 {
		return
	}
	max := base*ratio + slack
	res.rows = append(res.rows, row{
		Run: run, Metric: metric,
		Base: base, Cur: cur, Max: max,
		Regressed: cur > max,
	})
}

// compareMin gates one higher-is-better metric: current must stay at or
// above base/ratio. Skipped, like compare, when either side is zero
// (metric absent from that file's schema).
func (res *result) compareMin(run, metric string, base, cur, ratio float64) {
	if base == 0 || cur == 0 || ratio <= 0 {
		return
	}
	min := base / ratio
	res.rows = append(res.rows, row{
		Run: run, Metric: metric,
		Base: base, Cur: cur, Max: min, Min: true,
		Regressed: cur < min,
	})
}

// markdown renders the comparison as a GitHub-flavored table.
func (res *result) markdown(basePath, curPath string) string {
	var b strings.Builder
	regs := res.regressions()
	fmt.Fprintf(&b, "## benchdiff: `%s` vs `%s`\n\n", curPath, basePath)
	if len(regs) == 0 {
		fmt.Fprintf(&b, "No regressions (%d metrics compared).\n\n", len(res.rows))
	} else {
		fmt.Fprintf(&b, "**%d regression(s)** out of %d metrics compared.\n\n", len(regs), len(res.rows))
	}
	fmt.Fprintf(&b, "| run | metric | baseline | current | Δ%% | allowed | status |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---|\n")
	for _, r := range res.rows {
		if r.Note != "" {
			fmt.Fprintf(&b, "| %s | %s | — | — | — | — | ❌ %s |\n", r.Run, r.Metric, r.Note)
			continue
		}
		status := "ok"
		if r.Regressed {
			status = "❌ regressed"
		}
		allowed := fmt.Sprintf("≤ %.6g", r.Max)
		if r.Min {
			allowed = fmt.Sprintf("≥ %.6g", r.Max)
		}
		fmt.Fprintf(&b, "| %s | %s | %.6g | %.6g | %+.2f%% | %s | %s |\n",
			r.Run, r.Metric, r.Base, r.Cur, 100*(r.Cur/r.Base-1), allowed, status)
	}
	b.WriteString("\n")
	return b.String()
}
