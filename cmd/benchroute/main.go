// Command benchroute is a small benchmark driver for the negotiated
// global router. It routes congestion-prone synthetic designs at one or
// more worker counts and emits a machine-readable JSON report
// (BENCH_router.json by default) — segments per second, allocations per
// rerouted segment, final overflow — so the performance trajectory can be
// tracked across commits.
//
// Usage:
//
//	go run ./cmd/benchroute                 # default suite -> BENCH_router.json
//	go run ./cmd/benchroute -cells 4000 -workers 1,8 -out -   # print to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/route"
)

// Run is one measured router configuration.
type Run struct {
	Design      string  `json:"design"`
	Cells       int     `json:"cells"`
	Workers     int     `json:"workers"`
	Segments    int     `json:"segments"`
	RRRIters    int     `json:"rrr_iters"`
	WallSeconds float64 `json:"wall_seconds"`
	SegmentsSec float64 `json:"segments_per_sec"`
	// AllocsPerOp and BytesPerOp are per routed segment, measured on a
	// warm router (second RouteDesign call — the routability loop's
	// steady state).
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	InitialOverflow float64 `json:"initial_overflow"`
	Overflow        float64 `json:"overflow"`
	MaxCongestion   float64 `json:"max_congestion"`
}

// Report is the whole emitted document.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       []Run  `json:"runs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchroute:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "BENCH_router.json", "output file (- for stdout)")
		cells   = flag.String("cells", "800,2000", "comma-separated design sizes")
		workers = flag.String("workers", "", "comma-separated worker counts (default \"1,<auto>\")")
		seed    = flag.Int64("seed", 3, "benchmark design seed")
		repeat  = flag.Int("repeat", 3, "timed repetitions per configuration (best wall time wins)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}

	wlist, err := parseInts(*workers)
	if err != nil {
		return err
	}
	if len(wlist) == 0 {
		wlist = []int{1}
		if auto := par.DefaultWorkers(); auto != 1 {
			wlist = append(wlist, auto)
		}
	}
	clist, err := parseInts(*cells)
	if err != nil {
		return err
	}

	rep := Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range clist {
		for _, w := range wlist {
			r, err := measure(n, *seed, w, *repeat)
			if err != nil {
				return err
			}
			rep.Runs = append(rep.Runs, r)
			fmt.Fprintf(os.Stderr, "%s workers=%d: %d segs in %.3fs (%.0f segs/s, %.1f allocs/op, overflow %.0f)\n",
				r.Design, w, r.Segments, r.WallSeconds, r.SegmentsSec, r.AllocsPerOp, r.Overflow)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

func measure(cells int, seed int64, workers, repeat int) (Run, error) {
	d := gen.MustGenerate(gen.Congested(cells, seed))
	// Deterministic spread so nets have extent without running placement.
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
	}
	g, err := route.NewGrid(d)
	if err != nil {
		return Run{}, err
	}
	r := route.NewRouter(g, route.RouterOptions{Workers: workers})
	res := r.RouteDesign(d) // warm-up: size every scratch buffer
	run := Run{
		Design:          d.Name,
		Cells:           cells,
		Workers:         r.Workers(),
		Segments:        res.Segments,
		RRRIters:        res.RRRIters,
		InitialOverflow: res.InitialOverflow,
		Overflow:        res.Overflow,
		MaxCongestion:   res.MaxCongestion,
	}
	if repeat < 1 {
		repeat = 1
	}
	var m0, m1 runtime.MemStats
	best := time.Duration(1<<63 - 1)
	var allocs, bytes uint64
	for i := 0; i < repeat; i++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res = r.RouteDesign(d)
		el := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if el < best {
			best = el
			allocs = m1.Mallocs - m0.Mallocs
			bytes = m1.TotalAlloc - m0.TotalAlloc
		}
	}
	run.WallSeconds = best.Seconds()
	if run.WallSeconds > 0 {
		run.SegmentsSec = float64(res.Segments) / run.WallSeconds
	}
	if res.Segments > 0 {
		run.AllocsPerOp = float64(allocs) / float64(res.Segments)
		run.BytesPerOp = float64(bytes) / float64(res.Segments)
	}
	return run, nil
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
