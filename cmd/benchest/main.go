// Command benchest is the benchmark driver for the probabilistic
// routability estimator (internal/estimate). It emits a machine-readable
// JSON report (BENCH_estimate.json by default) with three measurement
// groups so the estimator's perf and fidelity can be tracked across
// commits and gated by cmd/benchdiff:
//
//   - Full-recompute throughput (tiles/s) and incremental per-move update
//     rate (moves/s, allocs/op) on a congested synthetic design.
//   - Correlation against the real negotiated router on the same design:
//     per-tile Pearson, Spearman and hotspot overlap — the drift signal.
//   - End-to-end placer comparison: the same design placed once with the
//     router every routability round and once in estimate mode (router
//     only for the trailing rounds), with the final routed quality of
//     both and two speedups. The *signal* speedup is the gated one: the
//     wall clock of producing the loop's congestion maps (N reduced-
//     budget routes vs N−k estimates + k routes, measured on the same
//     placed design) — exactly the work the estimator replaces, and
//     where it must stay well ahead (≥2x, typically ~6x). The total-wall
//     ratio is reported alongside but not floor-gated: this flow's loop
//     router runs at a reduced rip-up budget and is only ~15% of the
//     whole placement (GP and the per-round respread dominate), so the
//     whole-flow ratio hovers near 1x by construction and mostly
//     measures GP noise.
//
// The report doubles as a self-checking gate: -min-speedup, -min-pearson
// and -quality-delta make the run itself fail when estimate mode stops
// paying for itself, so CI catches regressions even before benchdiff
// compares against the committed baseline.
//
// Usage:
//
//	go run ./cmd/benchest                      # full suite -> BENCH_estimate.json
//	go run ./cmd/benchest -cells 1200 -e2e=false -out -   # correlation smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/estimate"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/incr"
	"repro/internal/route"
)

// Run is the micro + correlation measurement for one configuration. The
// JSON field names line up with cmd/benchdiff's gated schema: higher-is-
// better metrics (pearson, hotspot_overlap) get min-gates there.
type Run struct {
	Design  string `json:"design"`
	Cells   int    `json:"cells"`
	Workers int    `json:"workers"`
	Tiles   int    `json:"tiles"`

	// WallSeconds is one full Recompute, best of -repeat.
	WallSeconds float64 `json:"wall_seconds"`
	TilesPerSec float64 `json:"tiles_per_sec"`

	// Incremental per-move update cost, measured over a long warm
	// move/move-back loop through the attached incr cache.
	IncMovesPerSec float64 `json:"inc_moves_per_sec"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`

	// Correlation of the estimate against the real router's per-tile
	// congestion on this design.
	Pearson        float64 `json:"pearson"`
	Spearman       float64 `json:"spearman"`
	HotspotOverlap float64 `json:"hotspot_overlap"`
	CorrTiles      int     `json:"corr_tiles"`

	// Populated only on the flattened e2e row (design "<name>/e2e"):
	// the min-gated signal speedup and the estimate-mode routed quality,
	// in benchdiff's gated field names.
	Speedup       float64 `json:"speedup,omitempty"`
	Overflow      float64 `json:"overflow,omitempty"`
	MaxCongestion float64 `json:"max_congestion,omitempty"`
	HPWLAfter     float64 `json:"hpwl_after,omitempty"`
}

// E2E is the placer-level comparison. It is also flattened into the runs
// array (design name suffixed "/e2e") so benchdiff gates speedup and the
// estimate-mode routed quality against the committed baseline.
type E2E struct {
	Design           string `json:"design"`
	Cells            int    `json:"cells"`
	Workers          int    `json:"workers"`
	RoutabilityIters int    `json:"routability_iters"`
	RouteLastRounds  int    `json:"route_last_rounds"`

	// Whole-placement walls (informational — GP-dominated, see package
	// doc) and the gated congestion-signal walls.
	RouteWallSeconds    float64 `json:"route_wall_seconds"`
	EstimateWallSeconds float64 `json:"wall_seconds"`
	E2ESpeedup          float64 `json:"e2e_speedup"`

	// Signal walls: RoutabilityIters congestion maps produced the
	// route-every-round way vs the estimate-mode way, on the same placed
	// design at the loop's router budget. Speedup = route/estimate; this
	// is the min-gated "speedup" row in benchdiff.
	SignalRouteSeconds    float64 `json:"signal_route_seconds"`
	SignalEstimateSeconds float64 `json:"signal_estimate_seconds"`
	Speedup               float64 `json:"speedup"`

	// Final routed quality of each mode's placement (independent
	// route.EvaluateDesign on the placed design).
	RouteOverflow    float64 `json:"route_overflow"`
	EstimateOverflow float64 `json:"overflow"`
	RouteMaxCong     float64 `json:"route_max_congestion"`
	EstimateMaxCong  float64 `json:"max_congestion"`
	RouteHPWL        float64 `json:"route_hpwl"`
	EstimateHPWL     float64 `json:"hpwl_after"`
}

// Report is the whole emitted document. E2E entries appear both under
// their own key and inside Runs (as benchdiff rows).
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       []Run  `json:"runs"`
	E2E        []E2E  `json:"e2e,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchest:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "BENCH_estimate.json", "output file (- for stdout)")
		cells    = flag.Int("cells", 2500, "benchmark design size")
		workers  = flag.Int("workers", 4, "estimator/placer worker count (fixed, not machine-derived, so benchdiff keys match across hosts)")
		seed     = flag.Int64("seed", 21, "benchmark design seed")
		repeat   = flag.Int("repeat", 3, "timed repetitions per micro measurement (best wall time wins)")
		e2e      = flag.Bool("e2e", true, "run the end-to-end placer comparison (route-every-round vs estimate mode)")
		iters    = flag.Int("iters", 6, "routability iterations for the e2e comparison")
		lastN    = flag.Int("route-last", 1, "trailing router rounds in estimate mode for the e2e comparison")
		minSpeed = flag.Float64("min-speedup", 2.0, "fail when the congestion-signal speedup falls below this (0 disables)")
		minPear  = flag.Float64("min-pearson", 0.6, "fail when the estimator/router Pearson correlation falls below this (0 disables)")
		qualTol  = flag.Float64("quality-delta", 0.05, "fail when estimate-mode routed overflow or max congestion exceeds route mode by more than this fraction (negative disables)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}

	rep := Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	r, err := measureMicro(*cells, *seed, *workers, *repeat)
	if err != nil {
		return err
	}
	rep.Runs = append(rep.Runs, r)
	fmt.Fprintf(os.Stderr, "%s cells=%d workers=%d: %d tiles, %.0f tiles/s full, %.0f moves/s incremental (%.2f allocs/op), pearson %.3f spearman %.3f overlap %.2f\n",
		r.Design, r.Cells, r.Workers, r.Tiles, r.TilesPerSec, r.IncMovesPerSec, r.AllocsPerOp, r.Pearson, r.Spearman, r.HotspotOverlap)

	var failures []string
	if *minPear > 0 && r.Pearson < *minPear {
		failures = append(failures, fmt.Sprintf("pearson %.3f below floor %.3f", r.Pearson, *minPear))
	}

	if *e2e {
		e, err := measureE2E(*cells, *seed, *workers, *iters, *lastN)
		if err != nil {
			return err
		}
		rep.E2E = append(rep.E2E, e)
		rep.Runs = append(rep.Runs, e2eRun(e))
		fmt.Fprintf(os.Stderr, "%s e2e iters=%d: wall route %.2fs vs estimate %.2fs (%.2fx); signal %.3fs vs %.3fs (%.1fx); overflow %.0f->%.0f, maxcong %.2f->%.2f\n",
			e.Design, e.RoutabilityIters, e.RouteWallSeconds, e.EstimateWallSeconds, e.E2ESpeedup,
			e.SignalRouteSeconds, e.SignalEstimateSeconds, e.Speedup,
			e.RouteOverflow, e.EstimateOverflow, e.RouteMaxCong, e.EstimateMaxCong)
		if *minSpeed > 0 && e.Speedup < *minSpeed {
			failures = append(failures, fmt.Sprintf("congestion-signal speedup %.2fx below floor %.2fx", e.Speedup, *minSpeed))
		}
		if *qualTol >= 0 {
			// Absolute slack mirrors benchdiff: a tiny routed overflow
			// baseline would turn float jitter into a gate failure.
			const overflowSlack = 2.0
			if lim := e.RouteOverflow*(1+*qualTol) + overflowSlack; e.EstimateOverflow > lim {
				failures = append(failures, fmt.Sprintf("estimate-mode overflow %.1f exceeds route-mode %.1f by more than %.0f%%",
					e.EstimateOverflow, e.RouteOverflow, 100**qualTol))
			}
			if lim := e.RouteMaxCong * (1 + *qualTol); e.EstimateMaxCong > lim {
				failures = append(failures, fmt.Sprintf("estimate-mode max congestion %.3f exceeds route-mode %.3f by more than %.0f%%",
					e.EstimateMaxCong, e.RouteMaxCong, 100**qualTol))
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	} else {
		fmt.Fprintln(os.Stderr, "wrote", *out)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchest: GATE FAILED:", f)
		}
		return fmt.Errorf("%d gate(s) failed", len(failures))
	}
	return nil
}

// e2eRun flattens the e2e comparison into a benchdiff row. The design
// name is suffixed so the key does not collide with the micro run.
func e2eRun(e E2E) Run {
	return Run{
		Design: e.Design + "/e2e", Cells: e.Cells, Workers: e.Workers,
		WallSeconds: e.EstimateWallSeconds,
		Speedup:     e.Speedup,
		Overflow:    e.EstimateOverflow, MaxCongestion: e.EstimateMaxCong,
		HPWLAfter: e.EstimateHPWL,
	}
}

// measureMicro times a full recompute and the incremental move path, and
// scores the estimate against the real router, all on one design.
func measureMicro(cells int, seed int64, workers, repeat int) (Run, error) {
	if repeat < 1 {
		repeat = 1
	}
	d, err := gen.Generate(gen.Congested(cells, seed))
	if err != nil {
		return Run{}, err
	}
	g, err := route.NewGrid(d)
	if err != nil {
		return Run{}, err
	}
	e := estimate.New(g, estimate.Options{Workers: workers})

	run := Run{Design: d.Name, Cells: cells, Workers: workers, Tiles: e.Tiles()}

	// Full recompute: best single-call wall time out of repeat batches.
	const recomputesPerBatch = 10
	best := time.Duration(1<<63 - 1)
	for i := 0; i < repeat; i++ {
		t0 := time.Now()
		for j := 0; j < recomputesPerBatch; j++ {
			e.Recompute(d)
		}
		if el := time.Since(t0) / recomputesPerBatch; el < best {
			best = el
		}
	}
	run.WallSeconds = best.Seconds()
	if run.WallSeconds > 0 {
		run.TilesPerSec = float64(run.Tiles) / run.WallSeconds
	}

	// Correlation against the real router on the same placement.
	r := route.NewRouter(g, route.RouterOptions{Workers: workers})
	r.RouteDesign(d)
	routed := g.TileCongestion()
	e.Recompute(d)
	c := estimate.Correlate(e.TileCongestion(), routed, 0)
	run.Pearson, run.Spearman, run.HotspotOverlap, run.CorrTiles =
		c.Pearson, c.Spearman, c.HotspotOverlap, c.Tiles

	// Incremental move cost: a warm two-point shuttle through the incr
	// cache with the estimator attached (the dp guard's steady state).
	cache := incr.New(d)
	estimate.Attach(e, cache)
	ms := d.Movable()
	ci := ms[len(ms)/2]
	a := geom.Point{X: g.Origin.X + g.TileW, Y: g.Origin.Y + g.TileH}
	b := geom.Point{X: g.Origin.X + float64(g.NX-2)*g.TileW, Y: g.Origin.Y + float64(g.NY-2)*g.TileH}
	cache.Move(ci, a)
	cache.Move(ci, b) // warm both endpoints
	moves := 20000 * repeat
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < moves; i++ {
		if i%2 == 0 {
			cache.Move(ci, a)
		} else {
			cache.Move(ci, b)
		}
	}
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if el > 0 {
		run.IncMovesPerSec = float64(moves) / el.Seconds()
	}
	run.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(moves)
	run.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(moves)
	return run, nil
}

// measureE2E places the same design twice — router every routability
// round, then estimate mode — evaluates both placements with the real
// router, and times the congestion-signal production both ways on the
// route-mode placement.
func measureE2E(cells int, seed int64, workers, iters, lastN int) (E2E, error) {
	place := func(src string, lastRounds int) (*db.Design, float64, route.Metrics, error) {
		d, err := gen.Generate(gen.Congested(cells, seed))
		if err != nil {
			return nil, 0, route.Metrics{}, err
		}
		cfg := core.Config{
			Workers:          workers,
			RoutabilityIters: iters,
			CongestionSource: src,
			RouteLastRounds:  lastRounds,
		}
		t0 := time.Now()
		if _, err := core.MustNew(cfg).Place(d); err != nil {
			return nil, 0, route.Metrics{}, err
		}
		wall := time.Since(t0).Seconds()
		m, err := route.EvaluateDesign(d, route.RouterOptions{Workers: workers})
		return d, wall, m, err
	}

	dRoute, routeWall, routeM, err := place("route", 0)
	if err != nil {
		return E2E{}, err
	}
	_, estWall, estM, err := place("estimate", lastN)
	if err != nil {
		return E2E{}, err
	}
	e := E2E{
		Design: dRoute.Name, Cells: cells, Workers: workers,
		RoutabilityIters: iters, RouteLastRounds: lastN,
		RouteWallSeconds: routeWall, EstimateWallSeconds: estWall,
		RouteOverflow: routeM.Overflow, EstimateOverflow: estM.Overflow,
		RouteMaxCong: routeM.MaxCong, EstimateMaxCong: estM.MaxCong,
		RouteHPWL: routeM.HPWL, EstimateHPWL: estM.HPWL,
	}
	if estWall > 0 {
		e.E2ESpeedup = routeWall / estWall
	}
	if err := measureSignal(&e, dRoute, workers, iters, lastN); err != nil {
		return E2E{}, err
	}
	return e, nil
}

// measureSignal times one routability loop's worth of congestion maps the
// route-every-round way (iters reduced-budget routes — the loop's
// MaxRRRIters 2 budget) and the estimate-mode way (iters−lastN estimator
// recomputes plus lastN routes) on the same placed design.
func measureSignal(e *E2E, d *db.Design, workers, iters, lastN int) error {
	g, err := route.NewGrid(d)
	if err != nil {
		return err
	}
	r := route.NewRouter(g, route.RouterOptions{MaxRRRIters: 2, Workers: workers})
	r.RouteDesign(d) // warm the router like the loop's steady state
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		r.RouteDesign(d)
	}
	e.SignalRouteSeconds = time.Since(t0).Seconds()

	est := estimate.New(g, estimate.Options{Workers: workers})
	est.Recompute(d) // warm
	t0 = time.Now()
	for i := 0; i < iters-lastN; i++ {
		est.Recompute(d)
	}
	for i := 0; i < lastN; i++ {
		r.RouteDesign(d)
	}
	e.SignalEstimateSeconds = time.Since(t0).Seconds()
	if e.SignalEstimateSeconds > 0 {
		e.Speedup = e.SignalRouteSeconds / e.SignalEstimateSeconds
	}
	return nil
}
