// Hierarchical SoC scenario: a design whose logical hierarchy maps to
// fence regions (CPU, DSP, memory controller), placed twice — once
// hierarchy-aware and once flat — to show what fence awareness costs and
// buys. This is the workload class the paper's title targets: hierarchical
// mixed-size designs where sub-systems must stay inside their floorplan
// regions.
//
//	go run ./examples/hierarchical_soc
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/viz"
)

func main() {
	cfg := gen.Config{
		Name:             "soc",
		Seed:             7,
		NumStdCells:      3000,
		NumFixedMacros:   4,
		NumMovableMacros: 2,
		NumModules:       6, // cpu, dsp, memctl, 3 glue modules
		NumFences:        3,
		NumTerminals:     48,
		TargetUtil:       0.65,
	}

	// Hierarchy-aware run: fenced modules stay home.
	fenced := gen.MustGenerate(cfg)
	resF, err := core.MustNew(core.Config{}).Place(fenced)
	if err != nil {
		log.Fatal(err)
	}

	// Flat baseline: the same netlist with fences stripped.
	flat := gen.MustGenerate(cfg)
	resN, err := core.MustNew(core.Config{DisableFences: true}).Place(flat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %12s %10s %10s\n", "variant", "final HPWL", "fenceviol", "overlaps")
	fmt.Printf("%-16s %12.4g %10d %10d\n", "hierarchy-aware", resF.HPWLFinal, fenced.FenceViolations(), resF.Overlaps)
	fmt.Printf("%-16s %12.4g %10d %10d\n", "flat (stripped)", resN.HPWLFinal, countWouldBeViolations(flat, fenced), resN.Overlaps)
	fmt.Printf("\nfence-awareness HPWL cost: %+.1f%%\n",
		100*(resF.HPWLFinal-resN.HPWLFinal)/resN.HPWLFinal)

	// Render both placements for visual comparison.
	for _, v := range []struct {
		name string
		d    *db.Design
	}{{"soc_fenced.svg", fenced}, {"soc_flat.svg", flat}} {
		f, err := os.Create(v.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := viz.PlacementSVG(f, v.d, 800); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", v.name)
	}
}

// countWouldBeViolations counts how many of the flat run's cells would
// violate the fences of the reference design — i.e. how much hierarchy the
// flat placement destroyed. (The flat design itself has no fence records
// left, so the reference supplies them.)
func countWouldBeViolations(flat, ref *db.Design) int {
	count := 0
	for ci := range flat.Cells {
		c := &flat.Cells[ci]
		if !c.Movable() {
			continue
		}
		rg := ref.CellRegion(ci)
		if rg == db.NoRegion {
			continue
		}
		if !ref.Regions[rg].Contains(c.Rect()) {
			count++
		}
	}
	return count
}
