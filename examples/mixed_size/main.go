// Mixed-size walkthrough: build a design by hand with the db.Builder —
// standard cells around large movable macros — run the flow, and show how
// macro orientation selection and macro-first legalization behave. This
// example uses the public construction API directly instead of the
// synthetic generator, which is what a downstream tool integrating the
// placer would do.
//
//	go run ./examples/mixed_size
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/geom"
)

func main() {
	b := db.NewBuilder("mixed", geom.NewRect(0, 0, 400, 400))
	b.MakeRows(10, 1)

	// Two movable macros with edge pins, one fixed RAM block.
	ram := b.AddMacro("ram0", 120, 80, true)
	b.SetCellPos(ram, geom.Point{X: 20, Y: 300})
	m0 := b.AddMacro("mac0", 80, 60, false)
	m1 := b.AddMacro("mac1", 60, 90, false)

	// A ring of standard cells plus I/O pads.
	rng := rand.New(rand.NewSource(3))
	var cells []int
	for i := 0; i < 800; i++ {
		cells = append(cells, b.AddStdCell(fmt.Sprintf("c%d", i), float64(2+rng.Intn(10)), 10))
	}
	var pads []int
	for i := 0; i < 16; i++ {
		side := i % 4
		t := float64(i/4)*100 + 50
		var p geom.Point
		switch side {
		case 0:
			p = geom.Point{X: 0, Y: t}
		case 1:
			p = geom.Point{X: 400, Y: t}
		case 2:
			p = geom.Point{X: t, Y: 0}
		default:
			p = geom.Point{X: t, Y: 400}
		}
		pads = append(pads, b.AddTerminal(fmt.Sprintf("pad%d", i), p))
	}

	// Local nets among neighbouring cells, macro nets with corner pins,
	// and pad nets.
	netID := 0
	addNet := func(conns ...db.Conn) {
		b.AddNet(fmt.Sprintf("n%d", netID), 1, conns...)
		netID++
	}
	for i := 0; i+3 < len(cells); i += 2 {
		addNet(b.CenterConn(cells[i]), b.CenterConn(cells[i+1]), b.CenterConn(cells[i+3]))
	}
	for i := 0; i < 60; i++ {
		macro := m0
		if i%2 == 1 {
			macro = m1
		}
		// Pins on macro corners: orientation choice matters.
		corner := geom.Point{X: 0, Y: 0}
		if i%4 < 2 {
			corner = geom.Point{X: 80, Y: 60}
			if macro == m1 {
				corner = geom.Point{X: 60, Y: 90}
			}
		}
		addNet(db.Conn{Cell: macro, Offset: corner}, b.CenterConn(cells[rng.Intn(len(cells))]))
	}
	for i, pad := range pads {
		addNet(db.Conn{Cell: pad}, b.CenterConn(cells[(i*37)%len(cells)]))
	}
	addNet(db.Conn{Cell: ram, Offset: geom.Point{X: 60, Y: 0}}, b.CenterConn(cells[0]), b.CenterConn(cells[1]))

	design, err := b.Design()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(design.ComputeStats())

	res, err := core.MustNew(core.Config{DisableRoutability: true}).Place(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final HPWL %.4g, overlaps %d, out-of-die %d\n", res.HPWLFinal, res.Overlaps, res.OutOfDie)
	for _, name := range []string{"mac0", "mac1"} {
		ci := design.CellIndex(name)
		c := &design.Cells[ci]
		fmt.Printf("%s: placed at (%g, %g), orientation %s, footprint %gx%g\n",
			name, c.Pos.X, c.Pos.Y, c.Orient, c.W(), c.H())
	}
}
