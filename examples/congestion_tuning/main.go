// Congestion tuning: place a congestion-prone design with the routability
// loop off and on, route both, and print the ACE profile and scaled-HPWL
// trade-off — the core claim of routability-driven placement. Also writes
// before/after congestion heatmaps.
//
//	go run ./examples/congestion_tuning
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/route"
	"repro/internal/viz"
)

func main() {
	base := gen.Congested(1500, 11)

	type variant struct {
		name string
		cfg  core.Config
		svg  string
	}
	variants := []variant{
		{"wirelength-driven", core.Config{DisableRoutability: true, TargetDensity: 1.0}, "congestion_before.svg"},
		{"routability-driven", core.Config{RoutabilityIters: 3}, "congestion_after.svg"},
	}

	fmt.Printf("%-20s %12s %7s %12s   ACE(0.5/1/2/5%%)\n", "variant", "HPWL", "RC", "sHPWL")
	for _, v := range variants {
		d := gen.MustGenerate(base)
		if _, err := core.MustNew(v.cfg).Place(d); err != nil {
			log.Fatal(err)
		}
		m, err := route.EvaluateDesign(d, route.RouterOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.4g %7.1f %12.4g   %.2f/%.2f/%.2f/%.2f\n",
			v.name, m.HPWL, m.RC, m.ScaledHPWL, m.ACE[0], m.ACE[1], m.ACE[2], m.ACE[3])
		writeHeatmap(d, v.svg)
	}
	fmt.Println("\nThe routability-driven run trades a few percent of wirelength for a")
	fmt.Println("large congestion reduction, which the scaled HPWL rewards.")
}

func writeHeatmap(d *db.Design, path string) {
	grid, err := route.NewGrid(d)
	if err != nil {
		log.Fatal(err)
	}
	r := route.NewRouter(grid, route.RouterOptions{})
	r.RouteDesign(d)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.CongestionSVG(f, grid, 800); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
