// Quickstart: generate a small hierarchical mixed-size design, run the
// full routability-driven placement flow, and print the contest metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/route"
)

func main() {
	// A small design: 1500 standard cells, a few macros, two fenced
	// modules, peripheral I/O and a two-layer routing grid.
	design := gen.MustGenerate(gen.Config{
		Name:             "quickstart",
		Seed:             42,
		NumStdCells:      1500,
		NumFixedMacros:   3,
		NumMovableMacros: 1,
		NumModules:       4,
		NumFences:        2,
		NumTerminals:     24,
		TargetUtil:       0.65,
	})
	fmt.Println(design.ComputeStats())

	// The zero Config is the full NTUplace4h-style flow: WA wirelength
	// model, multilevel clustering, fence-aware spreading, the
	// routability loop, legalization and detailed placement.
	placer, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := placer.Place(design)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HPWL: global %.4g -> legalized %.4g -> final %.4g\n",
		result.HPWLGlobal, result.HPWLLegal, result.HPWLFinal)
	fmt.Printf("legality: overlaps=%d fences=%d out-of-die=%d\n",
		result.Overlaps, result.FenceViolations, result.OutOfDie)

	// Score the placement with the contest evaluator: global routing,
	// ACE congestion profile, RC and scaled HPWL.
	score, err := route.EvaluateDesign(design, route.RouterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routed score:", score)
}
